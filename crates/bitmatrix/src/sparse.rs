//! Hierarchical sparse row encoding: a summary-bitmask level over packed
//! non-empty payload bytes.
//!
//! The dense [`SlicedBitVector`](crate::SlicedBitVector) stores one
//! `(u32 index, |S|-bit payload)` pair per valid slice — a flat, one-level
//! skip structure. On power-law graphs most neighbourhood rows are >99%
//! zero *and* the valid slices themselves are mostly zero bytes, so this
//! module adds two more levels beneath the valid-slice level:
//!
//! ```text
//! top      1 bit per summary group (64 slices)      "any valid slice here?"
//! summary  1 bit per slice, packed non-zero words   "is slice k valid?"
//! masks    1 bit per payload byte, per valid slice  "is byte b non-zero?"
//! blocks   packed non-zero payload bytes            the data itself
//! ```
//!
//! Intersection ANDs the summary levels first and visits only mutually
//! valid slices whose byte masks intersect: `mask(a) & mask(b) == 0`
//! implies `a & b == 0` (every set bit lives in a non-zero byte), so the
//! byte-mask filter is *exact* — it never skips a pair that would have
//! produced triangles — and *monotone* — a sparse walk never visits more
//! pairs than the dense merge-join matches.
//!
//! No rank tables are stored: cursors advance by popcount during the
//! (ascending) walks, trading O(1) random access for the memory win that
//! motivates the encoding in the first place.

use std::fmt;

use crate::bitvec::BitVec;
use crate::error::{BitMatrixError, Result};
use crate::row::PairStats;
use crate::slice::SliceSize;
use crate::sliced::SlicedBitVector;

/// A bit row compressed with the hierarchical sparse encoding:
/// top/summary bitmask levels over per-slice byte masks and packed
/// non-zero payload bytes.
///
/// The represented bit set is identical to the dense encoding's — the
/// two are interconvertible without loss ([`SparseSlicedRow::from_dense`]
/// / [`SparseSlicedRow::to_dense`]) — only the storage layout and the
/// intersection algorithm differ.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::{BitVec, SliceSize, SlicedBitVector, SparseSlicedRow};
///
/// let v = BitVec::from_indices(4096, [3, 700, 701, 4000]);
/// let dense = SlicedBitVector::from_bitvec(&v, SliceSize::S64);
/// let sparse = SparseSlicedRow::from_dense(&dense);
/// assert_eq!(sparse.count_ones(), 4);
/// assert_eq!(sparse.valid_slice_count(), dense.valid_slice_count());
/// assert_eq!(sparse.to_dense(), dense);
/// // 3 valid slices with 1 non-zero byte each beat NVS x (8 + 4).
/// assert!(sparse.compressed_bytes() < dense.compressed_bytes());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SparseSlicedRow {
    slice_size: SliceSize,
    len_bits: usize,
    /// Bit `g` set ⇔ summary group `g` (slices `64g..64g+64`) holds at
    /// least one valid slice. Fixed size `⌈⌈total_slices/64⌉/64⌉` words.
    top: Vec<u64>,
    /// Packed non-zero summary words, ascending group order; bit
    /// `k mod 64` of group `k / 64`'s word ⇔ slice `k` is valid.
    summary: Vec<u64>,
    /// One byte mask per valid slice (`words_per_slice` bytes each,
    /// ascending slice order): bit `b` of mask byte `w` ⇔ byte `b` of
    /// payload word `w` is non-zero.
    masks: Vec<u8>,
    /// Packed non-zero payload bytes, in (slice, word, byte) order.
    blocks: Vec<u8>,
}

impl SparseSlicedRow {
    /// Re-encodes a dense sliced vector without changing the bit set.
    pub fn from_dense(dense: &SlicedBitVector) -> Self {
        let mut row = SparseSlicedRow::empty(dense.len_bits(), dense.slice_size());
        for s in dense.valid_slices() {
            row.push_slice(s.index, s.words);
        }
        row
    }

    /// Compresses a [`BitVec`] directly (via the dense form).
    pub fn from_bitvec(v: &BitVec, slice_size: SliceSize) -> Self {
        SparseSlicedRow::from_dense(&SlicedBitVector::from_bitvec(v, slice_size))
    }

    /// Compresses a vector of `len_bits` bits given the ascending indices
    /// of its set bits — the CSR-adjacency path.
    ///
    /// # Panics
    ///
    /// Panics if the indices are not strictly ascending or reach
    /// `len_bits`.
    pub fn from_sorted_indices<I>(len_bits: usize, set_bits: I, slice_size: SliceSize) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        SparseSlicedRow::from_dense(&SlicedBitVector::from_sorted_indices(
            len_bits, set_bits, slice_size,
        ))
    }

    /// The all-zero row over `len_bits` bits.
    ///
    /// `top` is kept trimmed to its last non-zero word (so an all-empty
    /// row — the common case in a sparse matrix — costs zero bytes) and
    /// grows on demand.
    pub fn empty(len_bits: usize, slice_size: SliceSize) -> Self {
        SparseSlicedRow {
            slice_size,
            len_bits,
            top: Vec::new(),
            summary: Vec::new(),
            masks: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Appends slice `k` (must exceed every stored index) with payload
    /// `words`; zero payloads are ignored.
    fn push_slice(&mut self, k: u32, words: &[u64]) {
        if words.iter().all(|&w| w == 0) {
            return;
        }
        let g = k as usize / 64;
        if self.top.len() <= g / 64 {
            self.top.resize(g / 64 + 1, 0);
        }
        if self.top[g / 64] & (1u64 << (g % 64)) == 0 {
            self.top[g / 64] |= 1u64 << (g % 64);
            self.summary.push(0);
        }
        *self.summary.last_mut().expect("group word was just ensured") |= 1u64 << (k % 64);
        for &word in words {
            let mut mask = 0u8;
            for b in 0..8 {
                let byte = (word >> (8 * b)) as u8;
                if byte != 0 {
                    mask |= 1 << b;
                    self.blocks.push(byte);
                }
            }
            self.masks.push(mask);
        }
    }

    /// The slice size this row was compressed with.
    pub fn slice_size(&self) -> SliceSize {
        self.slice_size
    }

    /// Length of the uncompressed vector in bits.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Returns `true` when no slice is valid (the all-zero vector).
    pub fn is_empty(&self) -> bool {
        self.summary.is_empty()
    }

    /// Number of valid slices — identical to the dense encoding's `NVS`
    /// contribution for the same bit set.
    pub fn valid_slice_count(&self) -> usize {
        self.masks.len() / self.slice_size.words_per_slice()
    }

    /// Number of slices the uncompressed vector would occupy.
    pub fn total_slices(&self) -> usize {
        self.slice_size.slices_for(self.len_bits)
    }

    /// Fraction of slices that are valid, in `[0, 1]`.
    pub fn valid_fraction(&self) -> f64 {
        if self.total_slices() == 0 {
            0.0
        } else {
            self.valid_slice_count() as f64 / self.total_slices() as f64
        }
    }

    /// Bytes of the compressed representation, counting every level of
    /// the hierarchy: top words + packed summary words + per-slice byte
    /// masks + packed payload bytes. The sparse analogue of the dense
    /// `NVS × (|S|/8 + 4)` accounting.
    pub fn compressed_bytes(&self) -> usize {
        8 * self.top.len() + 8 * self.summary.len() + self.masks.len() + self.blocks.len()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.count_ones())).sum()
    }

    /// Decodes every valid slice in ascending index order into `f`.
    pub(crate) fn for_each_valid_slice(&self, mut f: impl FnMut(u32, &[u64])) {
        let wps = self.slice_size.words_per_slice();
        let mut scratch = vec![0u64; wps];
        let mut spos = 0usize; // packed summary cursor
        let mut ord = 0usize; // valid-slice ordinal
        let mut boff = 0usize; // blocks cursor
        for (ti, &tw) in self.top.iter().enumerate() {
            let mut trem = tw;
            while trem != 0 {
                let g = ti * 64 + trem.trailing_zeros() as usize;
                trem &= trem - 1;
                let gw = self.summary[spos];
                spos += 1;
                let mut grem = gw;
                while grem != 0 {
                    let k = g * 64 + grem.trailing_zeros() as usize;
                    grem &= grem - 1;
                    scratch.fill(0);
                    for (w, word) in scratch.iter_mut().enumerate() {
                        let mut mrem = self.masks[ord * wps + w];
                        while mrem != 0 {
                            let b = mrem.trailing_zeros();
                            mrem &= mrem - 1;
                            *word |= u64::from(self.blocks[boff]) << (8 * b);
                            boff += 1;
                        }
                    }
                    f(k as u32, &scratch);
                    ord += 1;
                }
            }
        }
    }

    /// Decompresses back into the dense sliced encoding.
    pub fn to_dense(&self) -> SlicedBitVector {
        let wps = self.slice_size.words_per_slice();
        let mut indices = Vec::with_capacity(self.valid_slice_count());
        let mut data = Vec::with_capacity(self.valid_slice_count() * wps);
        self.for_each_valid_slice(|k, words| {
            indices.push(k);
            data.extend_from_slice(words);
        });
        SlicedBitVector::from_parts(self.slice_size, self.len_bits, indices, data)
    }

    /// Decompresses back to a dense [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        self.to_dense().to_bitvec()
    }

    /// Extracts the valid slices whose index falls in `slices`,
    /// preserving length and slice size — the sparse twin of
    /// [`SlicedBitVector::restrict_slices`].
    pub fn restrict_slices(&self, slices: std::ops::Range<u32>) -> SparseSlicedRow {
        let mut out = SparseSlicedRow::empty(self.len_bits, self.slice_size);
        self.for_each_valid_slice(|k, words| {
            if k >= slices.start && k < slices.end {
                out.push_slice(k, words);
            }
        });
        out
    }

    /// Number of valid slices whose index falls in `slices`.
    pub fn valid_slices_in(&self, slices: std::ops::Range<u32>) -> usize {
        let mut count = 0usize;
        let mut spos = 0usize;
        for (ti, &tw) in self.top.iter().enumerate() {
            let mut trem = tw;
            while trem != 0 {
                let g = ti * 64 + trem.trailing_zeros() as usize;
                trem &= trem - 1;
                let gw = self.summary[spos];
                spos += 1;
                let mut grem = gw;
                while grem != 0 {
                    let k = (g * 64 + grem.trailing_zeros() as usize) as u32;
                    grem &= grem - 1;
                    if k >= slices.start && k < slices.end {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Resolves `bit` into `(slice, word, byte-in-word, bit-in-byte)`.
    fn locate(&self, bit: usize) -> Result<(usize, usize, u32, u32)> {
        if bit >= self.len_bits {
            return Err(BitMatrixError::IndexOutOfBounds { index: bit, len: self.len_bits });
        }
        let bits = self.slice_size.bits() as usize;
        let within = bit % bits;
        Ok((bit / bits, within / 64, ((within % 64) / 8) as u32, (within % 8) as u32))
    }

    /// Position of group `g`'s word in the packed `summary` array, or
    /// `Err(insertion point)` when the group is absent.
    fn summary_pos(&self, g: usize) -> std::result::Result<usize, usize> {
        if g / 64 >= self.top.len() {
            return Err(self.summary.len());
        }
        let below: usize = self.top[..g / 64].iter().map(|w| w.count_ones() as usize).sum();
        let pos = below + (self.top[g / 64] & ((1u64 << (g % 64)) - 1)).count_ones() as usize;
        if self.top[g / 64] & (1u64 << (g % 64)) != 0 {
            Ok(pos)
        } else {
            Err(pos)
        }
    }

    /// Ordinal of slice `k` among valid slices given its group's packed
    /// summary position (slice need not itself be valid).
    fn slice_ordinal(&self, spos: usize, k: usize) -> usize {
        let before: usize = self.summary[..spos].iter().map(|w| w.count_ones() as usize).sum();
        before + (self.summary[spos] & ((1u64 << (k % 64)) - 1)).count_ones() as usize
    }

    /// Byte offset into `blocks` of valid-slice ordinal `ord`.
    fn block_offset(&self, ord: usize) -> usize {
        let wps = self.slice_size.words_per_slice();
        self.masks[..ord * wps].iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Sets bit `bit` in place, maintaining every level of the hierarchy
    /// (summary insert, mask-bit insert, block-byte insert). Returns
    /// `true` when the bit was newly set.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] when `bit` is at or
    /// beyond the vector length.
    pub fn set_bit(&mut self, bit: usize) -> Result<bool> {
        let (k, w, byte_in_word, bit_in_byte) = self.locate(bit)?;
        let wps = self.slice_size.words_per_slice();
        let g = k / 64;
        let spos = match self.summary_pos(g) {
            Ok(spos) => spos,
            Err(ins) => {
                if self.top.len() <= g / 64 {
                    self.top.resize(g / 64 + 1, 0);
                }
                self.top[g / 64] |= 1u64 << (g % 64);
                self.summary.insert(ins, 0);
                ins
            }
        };
        let ord = self.slice_ordinal(spos, k);
        if self.summary[spos] & (1u64 << (k % 64)) == 0 {
            // Freshly valid slice: zeroed masks, summary bit.
            self.summary[spos] |= 1u64 << (k % 64);
            self.masks.splice(ord * wps..ord * wps, std::iter::repeat_n(0u8, wps));
        }
        let mask_idx = ord * wps + w;
        let boff = self.block_offset(ord)
            + self.masks[ord * wps..mask_idx]
                .iter()
                .map(|m| m.count_ones() as usize)
                .sum::<usize>()
            + (self.masks[mask_idx] & ((1u8 << byte_in_word) - 1)).count_ones() as usize;
        if self.masks[mask_idx] & (1 << byte_in_word) != 0 {
            let byte = &mut self.blocks[boff];
            let was_set = *byte & (1 << bit_in_byte) != 0;
            *byte |= 1 << bit_in_byte;
            Ok(!was_set)
        } else {
            self.masks[mask_idx] |= 1 << byte_in_word;
            self.blocks.insert(boff, 1 << bit_in_byte);
            Ok(true)
        }
    }

    /// Clears bit `bit` in place, dropping empty bytes, slices, summary
    /// words and top bits as they zero out — a mutated row stays
    /// canonical and compares equal to a from-scratch compression of the
    /// same bits. Returns `true` when the bit was previously set.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] when `bit` is at or
    /// beyond the vector length.
    pub fn clear_bit(&mut self, bit: usize) -> Result<bool> {
        let (k, w, byte_in_word, bit_in_byte) = self.locate(bit)?;
        let wps = self.slice_size.words_per_slice();
        let g = k / 64;
        let Ok(spos) = self.summary_pos(g) else {
            return Ok(false);
        };
        if self.summary[spos] & (1u64 << (k % 64)) == 0 {
            return Ok(false);
        }
        let ord = self.slice_ordinal(spos, k);
        let mask_idx = ord * wps + w;
        if self.masks[mask_idx] & (1 << byte_in_word) == 0 {
            return Ok(false);
        }
        let boff = self.block_offset(ord)
            + self.masks[ord * wps..mask_idx]
                .iter()
                .map(|m| m.count_ones() as usize)
                .sum::<usize>()
            + (self.masks[mask_idx] & ((1u8 << byte_in_word) - 1)).count_ones() as usize;
        if self.blocks[boff] & (1 << bit_in_byte) == 0 {
            return Ok(false);
        }
        self.blocks[boff] &= !(1 << bit_in_byte);
        if self.blocks[boff] == 0 {
            self.blocks.remove(boff);
            self.masks[mask_idx] &= !(1 << byte_in_word);
            if self.masks[ord * wps..(ord + 1) * wps].iter().all(|&m| m == 0) {
                self.masks.drain(ord * wps..(ord + 1) * wps);
                self.summary[spos] &= !(1u64 << (k % 64));
                if self.summary[spos] == 0 {
                    self.summary.remove(spos);
                    self.top[g / 64] &= !(1u64 << (g % 64));
                    while self.top.last() == Some(&0) {
                        self.top.pop();
                    }
                }
            }
        }
        Ok(true)
    }
}

/// Per-row forward cursor over the packed hierarchy, used by the
/// two-level matching walk. Groups are consumed in ascending order;
/// `base_rank` tracks the valid-slice ordinal at the current group and
/// `(mask_ord, block_off)` lag behind, advancing only to slices the walk
/// actually inspects.
struct Walk<'a> {
    row: &'a SparseSlicedRow,
    ti: usize,
    trem: u64,
    spos: usize,
    /// Valid slices in groups fully consumed before the current one.
    base_rank: usize,
    /// Pending rank adjustment: popcount of the group word most recently
    /// handed out, folded into `base_rank` on the next advance.
    pending: usize,
    mask_ord: usize,
    block_off: usize,
}

impl<'a> Walk<'a> {
    fn new(row: &'a SparseSlicedRow) -> Self {
        Walk {
            row,
            ti: 0,
            trem: row.top.first().copied().unwrap_or(0),
            spos: 0,
            base_rank: 0,
            pending: 0,
            mask_ord: 0,
            block_off: 0,
        }
    }

    /// The next `(group index, summary word)` in ascending order.
    fn next_group(&mut self) -> Option<(usize, u64)> {
        self.base_rank += self.pending;
        self.pending = 0;
        loop {
            if self.trem != 0 {
                let g = self.ti * 64 + self.trem.trailing_zeros() as usize;
                self.trem &= self.trem - 1;
                let gw = self.row.summary[self.spos];
                self.spos += 1;
                self.pending = gw.count_ones() as usize;
                return Some((g, gw));
            }
            self.ti += 1;
            if self.ti >= self.row.top.len() {
                return None;
            }
            self.trem = self.row.top[self.ti];
        }
    }

    /// Advances the mask/block cursors to valid-slice ordinal `ord`
    /// (monotone: callers request ascending ordinals).
    fn advance_to(&mut self, ord: usize) {
        let wps = self.row.slice_size.words_per_slice();
        while self.mask_ord < ord {
            self.block_off += self.row.masks[self.mask_ord * wps..(self.mask_ord + 1) * wps]
                .iter()
                .map(|m| m.count_ones() as usize)
                .sum::<usize>();
            self.mask_ord += 1;
        }
    }

    /// Decodes the slice at ordinal `ord` (cursors must already point at
    /// it) into `out`.
    fn decode(&self, ord: usize, out: &mut [u64]) {
        let wps = self.row.slice_size.words_per_slice();
        let mut boff = self.block_off;
        for (w, word) in out.iter_mut().enumerate() {
            *word = 0;
            let mut mrem = self.row.masks[ord * wps + w];
            while mrem != 0 {
                let b = mrem.trailing_zeros();
                mrem &= mrem - 1;
                *word |= u64::from(self.row.blocks[boff]) << (8 * b);
                boff += 1;
            }
        }
    }
}

/// The two-level skip-empty intersection of two sparse rows: AND the
/// summary levels, then visit only mutually valid slices whose byte
/// masks intersect. `DECODE` controls whether visited pairs are decoded
/// and ANDed into `f` (index-only callers skip the payload work).
pub(crate) fn walk_matching<const DECODE: bool>(
    a: &SparseSlicedRow,
    b: &SparseSlicedRow,
    mut f: impl FnMut(u32, &[u64]),
) -> PairStats {
    let wps = a.slice_size.words_per_slice();
    let mut scratch_a = vec![0u64; wps];
    let mut scratch_b = vec![0u64; wps];
    let mut stats = PairStats::default();
    let mut wa = Walk::new(a);
    let mut wb = Walk::new(b);
    let mut ga = wa.next_group();
    let mut gb = wb.next_group();
    while let (Some((g1, w1)), Some((g2, w2))) = (ga, gb) {
        if g1 < g2 {
            ga = wa.next_group();
            continue;
        }
        if g2 < g1 {
            gb = wb.next_group();
            continue;
        }
        let mut common = w1 & w2;
        while common != 0 {
            let kin = common.trailing_zeros() as usize;
            common &= common - 1;
            let k = (g1 * 64 + kin) as u32;
            let ra = wa.base_rank + (w1 & ((1u64 << kin) - 1)).count_ones() as usize;
            let rb = wb.base_rank + (w2 & ((1u64 << kin) - 1)).count_ones() as usize;
            wa.advance_to(ra);
            wb.advance_to(rb);
            let intersects =
                (0..wps).any(|w| a.masks[ra * wps + w] & b.masks[rb * wps + w] != 0);
            if intersects {
                stats.visited += 1;
                if DECODE {
                    wa.decode(ra, &mut scratch_a);
                    wb.decode(rb, &mut scratch_b);
                    for (x, &y) in scratch_a.iter_mut().zip(scratch_b.iter()) {
                        *x &= y;
                    }
                    f(k, &scratch_a);
                } else {
                    f(k, &[]);
                }
            } else {
                stats.skipped += 1;
            }
        }
        ga = wa.next_group();
        gb = wb.next_group();
    }
    stats
}

impl fmt::Debug for SparseSlicedRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparseSlicedRow(|S|={}, len={}, valid={}/{}, blocks={}B)",
            self.slice_size,
            self.len_bits,
            self.valid_slice_count(),
            self.total_slices(),
            self.blocks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(len: usize, ones: &[usize], s: SliceSize) -> SparseSlicedRow {
        SparseSlicedRow::from_sorted_indices(len, ones.iter().copied(), s)
    }

    /// Deterministic pseudo-random bit sets for round-trip checks.
    fn pseudo_ones(len: usize, density_recip: u64, seed: u64) -> Vec<usize> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .filter(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.is_multiple_of(density_recip)
            })
            .collect()
    }

    #[test]
    fn round_trips_through_dense_for_every_slice_size() {
        for s in SliceSize::ALL {
            for density in [3u64, 17, 113] {
                let ones = pseudo_ones(2000, density, u64::from(s.bits()));
                let dense =
                    SlicedBitVector::from_sorted_indices(2000, ones.iter().copied(), s);
                let sp = SparseSlicedRow::from_dense(&dense);
                assert_eq!(sp.to_dense(), dense, "|S|={s} 1/{density}");
                assert_eq!(sp.count_ones(), dense.count_ones());
                assert_eq!(sp.valid_slice_count(), dense.valid_slice_count());
                assert_eq!(sp.valid_fraction(), dense.valid_fraction());
            }
        }
    }

    #[test]
    fn matching_walk_agrees_with_dense_merge_join_and_never_visits_more() {
        for s in [SliceSize::S16, SliceSize::S64, SliceSize::S512] {
            let a_ones = pseudo_ones(3000, 19, 5);
            let b_ones = pseudo_ones(3000, 13, 9);
            let da = SlicedBitVector::from_sorted_indices(3000, a_ones.iter().copied(), s);
            let db = SlicedBitVector::from_sorted_indices(3000, b_ones.iter().copied(), s);
            let sa = SparseSlicedRow::from_dense(&da);
            let sb = SparseSlicedRow::from_dense(&db);

            let mut sparse_count = 0u64;
            let mut visited_ks = Vec::new();
            let stats = walk_matching::<true>(&sa, &sb, |k, anded| {
                visited_ks.push(k);
                sparse_count += anded.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
            });
            assert_eq!(sparse_count, da.and_popcount(&db), "|S|={s}");
            let dense_pairs = da.matching_slices(&db).unwrap().count() as u64;
            assert_eq!(stats.visited + stats.skipped, dense_pairs, "|S|={s}");
            assert!(stats.visited <= dense_pairs);
            assert!(visited_ks.windows(2).all(|w| w[0] < w[1]), "ascending slice order");

            // The index-only walk sees the identical pair population.
            let mut index_ks = Vec::new();
            let index_stats = walk_matching::<false>(&sa, &sb, |k, _| index_ks.push(k));
            assert_eq!(index_ks, visited_ks);
            assert_eq!(index_stats, stats);
        }
    }

    #[test]
    fn byte_mask_filter_skips_byte_disjoint_slices() {
        // Both rows valid in slice 0, but in different bytes of it.
        let a = sparse(128, &[0, 1], SliceSize::S64); // byte 0
        let b = sparse(128, &[40, 41], SliceSize::S64); // byte 5
        let stats = walk_matching::<true>(&a, &b, |_, _| panic!("no pair may be visited"));
        assert_eq!(stats.visited, 0);
        assert_eq!(stats.skipped, 1);
        // Same byte, different bits: visited, AND = 0.
        let c = sparse(128, &[2], SliceSize::S64);
        let mut count = 0u64;
        let stats = walk_matching::<true>(&a, &c, |_, anded| {
            count += anded.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        });
        assert_eq!((stats.visited, stats.skipped, count), (1, 0, 0));
    }

    #[test]
    fn set_and_clear_keep_the_row_canonical() {
        for s in [SliceSize::S16, SliceSize::S64, SliceSize::S256] {
            let mut row = SparseSlicedRow::empty(1500, s);
            let script = pseudo_ones(1500, 7, 42);
            for &b in &script {
                assert!(row.set_bit(b).unwrap(), "fresh set of {b}");
                assert!(!row.set_bit(b).unwrap(), "double set of {b}");
            }
            assert_eq!(row, sparse(1500, &script, s), "|S|={s} after inserts");
            // Clear every other bit, then compare against from-scratch.
            let (dropped, kept): (Vec<_>, Vec<_>) =
                script.iter().enumerate().partition(|(i, _)| i % 2 == 0);
            for (_, &b) in &dropped {
                assert!(row.clear_bit(b).unwrap(), "clear of {b}");
                assert!(!row.clear_bit(b).unwrap(), "double clear of {b}");
            }
            let kept: Vec<usize> = kept.into_iter().map(|(_, &b)| b).collect();
            assert_eq!(row, sparse(1500, &kept, s), "|S|={s} after removals");
            for &b in &kept {
                row.clear_bit(b).unwrap();
            }
            assert!(row.is_empty());
            assert_eq!(row, SparseSlicedRow::empty(1500, s));
        }
    }

    #[test]
    fn out_of_bounds_bit_is_an_error() {
        let mut row = SparseSlicedRow::empty(100, SliceSize::S64);
        assert!(matches!(
            row.set_bit(100),
            Err(BitMatrixError::IndexOutOfBounds { index: 100, len: 100 })
        ));
        assert!(matches!(row.clear_bit(700), Err(BitMatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn restrict_partitions_exactly() {
        let ones = pseudo_ones(4000, 11, 3);
        let row = sparse(4000, &ones, SliceSize::S64);
        let cut = 31u32;
        let head = row.restrict_slices(0..cut);
        let tail = row.restrict_slices(cut..row.total_slices() as u32);
        assert_eq!(head.count_ones() + tail.count_ones(), row.count_ones());
        assert_eq!(
            head.valid_slice_count() + tail.valid_slice_count(),
            row.valid_slice_count()
        );
        assert_eq!(head.valid_slice_count(), row.valid_slices_in(0..cut));
        assert_eq!(head.len_bits(), 4000);
        assert_eq!(
            head.to_dense(),
            row.to_dense().restrict_slices(0..cut),
            "restriction commutes with re-encoding"
        );
    }

    #[test]
    fn compressed_bytes_counts_every_level() {
        // One bit: 1 top word + 1 summary word + 1 mask byte/word + 1 block.
        let row = sparse(128, &[0], SliceSize::S64);
        assert_eq!(row.compressed_bytes(), 8 + 8 + 1 + 1);
        // Empty rows cost nothing — the top level is trimmed.
        assert_eq!(SparseSlicedRow::empty(128, SliceSize::S64).compressed_bytes(), 0);
        assert_eq!(SparseSlicedRow::empty(0, SliceSize::S64).compressed_bytes(), 0);
    }
}
