//! Dense bit matrix used to verify the paper's algebraic identities on
//! small reference graphs.

use std::fmt;

use crate::bitvec::BitVec;
use crate::error::{BitMatrixError, Result};

/// A square dense bit matrix (one [`BitVec`] per row).
///
/// This type exists for *verification*, not performance: it implements the
/// textbook identities of §II-A / §III so the sliced in-memory kernel can be
/// cross-checked on small graphs:
///
/// * `trace(A³) / 6` — the matrix-multiplication triangle count,
/// * `nnz(A ∩ A²)` — Equation (1) of the paper,
/// * `Σ_{A[i][j]=1} BitCount(AND(A[i][*], A[*][j]ᵀ))` — Equation (5).
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::BitMatrix;
///
/// // The 4-vertex graph of the paper's Fig. 2 (upper-triangular form).
/// let a = BitMatrix::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])?;
/// assert_eq!(a.triangle_count_trace(), 2);
/// assert_eq!(a.triangle_count_bitwise()?, 2);
/// # Ok::<(), tcim_bitmatrix::BitMatrixError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    rows: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn new(n: usize) -> Self {
        BitMatrix { n, rows: vec![BitVec::new(n); n] }
    }

    /// Builds the **upper-triangular** adjacency matrix of an undirected
    /// graph from an edge list, as in the paper's Fig. 2: for an edge
    /// `(u, v)` only `A[min][max]` is set.
    ///
    /// Self-loops are rejected because a simple undirected graph has none.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::DimensionOutOfBounds`] for a vertex outside
    /// `0..n` and treats a self-loop as the same error on `index == u`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut m = BitMatrix::new(n);
        for &(u, v) in edges {
            if u >= n {
                return Err(BitMatrixError::DimensionOutOfBounds { index: u, dim: n });
            }
            if v >= n || u == v {
                return Err(BitMatrixError::DimensionOutOfBounds { index: v, dim: n });
            }
            m.rows[u.min(v)].set(u.max(v));
        }
        Ok(m)
    }

    /// Builds the **full symmetric** adjacency matrix from an edge list.
    ///
    /// # Errors
    ///
    /// Same as [`BitMatrix::from_edges`].
    pub fn from_edges_symmetric(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut m = BitMatrix::from_edges(n, edges)?;
        for i in 0..n {
            let ones: Vec<usize> = m.rows[i].iter_ones().collect();
            for j in ones {
                m.rows[j].set(i);
            }
        }
        Ok(m)
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `A[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i].get(j)
    }

    /// Sets entry `A[i][j]` to one.
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize) {
        self.rows[i].set(j);
    }

    /// Row `i` as a bit vector (`A[i][*]`).
    ///
    /// # Panics
    ///
    /// Panics when `i >= n`.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Column `j` as a freshly materialised bit vector (`A[*][j]ᵀ`).
    ///
    /// # Panics
    ///
    /// Panics when `j >= n`.
    pub fn column(&self, j: usize) -> BitVec {
        let mut c = BitVec::new(self.n);
        for i in 0..self.n {
            if self.rows[i].get(j) {
                c.set(i);
            }
        }
        c
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::new(self.n);
        for i in 0..self.n {
            for j in self.rows[i].iter_ones() {
                t.rows[j].set(i);
            }
        }
        t
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> u64 {
        self.rows.iter().map(BitVec::count_ones).sum()
    }

    /// Integer matrix product `self · other` (path counting, not Boolean).
    ///
    /// Returns a row-major `Vec<Vec<u32>>` because `A²` entries exceed one.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::LengthMismatch`] when dimensions differ.
    pub fn mul_counts(&self, other: &BitMatrix) -> Result<Vec<Vec<u32>>> {
        if self.n != other.n {
            return Err(BitMatrixError::LengthMismatch { left: self.n, right: other.n });
        }
        let other_t = other.transpose();
        // A[i][*] ⋅ B[*][j] = popcount(row_i AND col_j) for 0/1 data.
        let out = self
            .rows
            .iter()
            .map(|row| {
                other_t
                    .rows
                    .iter()
                    .map(|col| row.and_popcount(col).expect("rows share dimension n") as u32)
                    .collect()
            })
            .collect();
        Ok(out)
    }

    /// Triangle count via `trace(A³) / 6` on the symmetrised matrix
    /// (§II-A of the paper).
    pub fn triangle_count_trace(&self) -> u64 {
        // Symmetrise first: the identity requires the full adjacency matrix.
        let mut sym = self.clone();
        for i in 0..self.n {
            let ones: Vec<usize> = sym.rows[i].iter_ones().collect();
            for j in ones {
                sym.rows[j].set(i);
            }
        }
        let a2 = sym.mul_counts(&sym).expect("same dimension");
        // trace(A³) = Σ_i Σ_k A[i][k] · A²[k][i]
        let trace: u64 = sym
            .rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter_ones().map(move |k| (i, k)))
            .map(|(i, k)| u64::from(a2[k][i]))
            .sum();
        trace / 6
    }

    /// Triangle count via the paper's Equation (5):
    /// `Σ_{A[i][j]=1} BitCount(AND(A[i][*], A[*][j]ᵀ))`.
    ///
    /// On an upper-triangular matrix each triangle is counted exactly once
    /// (the orientation picks the unique `i < k < j` ordering); on a full
    /// symmetric matrix the sum counts each triangle six times and is
    /// divided accordingly.
    ///
    /// # Errors
    ///
    /// Propagates length mismatches from the underlying AND (cannot occur
    /// for a well-formed square matrix).
    pub fn triangle_count_bitwise(&self) -> Result<u64> {
        let t = self.transpose();
        let mut acc = 0u64;
        let mut symmetric = true;
        'sym: for i in 0..self.n {
            for j in self.rows[i].iter_ones() {
                if !self.rows[j].get(i) {
                    symmetric = false;
                    break 'sym;
                }
            }
        }
        for i in 0..self.n {
            for j in self.rows[i].iter_ones() {
                acc += self.rows[i].and_popcount(&t.rows[j])?;
            }
        }
        Ok(if symmetric && self.nnz() > 0 { acc / 6 } else { acc })
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}×{})", self.n, self.n)?;
        let show = self.n.min(16);
        for i in 0..show {
            for j in 0..show {
                write!(f, "{}", u8::from(self.get(i, j)))?;
            }
            if self.n > show {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.n > show {
            writeln!(f, "⋮")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Edges of the paper's Fig. 2 example graph.
    const FIG2: [(usize, usize); 5] = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)];

    #[test]
    fn fig2_adjacency_matches_paper() {
        let a = BitMatrix::from_edges(4, &FIG2).unwrap();
        // Paper Fig. 2 upper-triangular matrix rows: 0110, 0011, 0001, 0000.
        assert_eq!(format!("{:b}", a.row(0)), "0110");
        assert_eq!(format!("{:b}", a.row(1)), "0011");
        assert_eq!(format!("{:b}", a.row(2)), "0001");
        assert_eq!(format!("{:b}", a.row(3)), "0000");
    }

    #[test]
    fn fig2_has_two_triangles_every_way() {
        let a = BitMatrix::from_edges(4, &FIG2).unwrap();
        assert_eq!(a.triangle_count_trace(), 2);
        assert_eq!(a.triangle_count_bitwise().unwrap(), 2);
        let sym = BitMatrix::from_edges_symmetric(4, &FIG2).unwrap();
        assert_eq!(sym.triangle_count_bitwise().unwrap(), 2);
        assert_eq!(sym.triangle_count_trace(), 2);
    }

    #[test]
    fn fig2_step_by_step_and_results() {
        // The five steps of Fig. 2: (R0,C1)→0, (R0,C2)→1, (R1,C2)→0 … the
        // accumulated BitCount ends at 2.
        let a = BitMatrix::from_edges(4, &FIG2).unwrap();
        let t = a.transpose();
        let steps = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)];
        let counts: Vec<u64> =
            steps.iter().map(|&(i, j)| a.row(i).and_popcount(t.row(j)).unwrap()).collect();
        // Per the figure the running totals are 0,1,1,2,2 → deltas:
        assert_eq!(counts, vec![0, 1, 0, 1, 0]);
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let a = BitMatrix::from_edges(5, &edges).unwrap();
        // C(5,3) = 10.
        assert_eq!(a.triangle_count_trace(), 10);
        assert_eq!(a.triangle_count_bitwise().unwrap(), 10);
    }

    #[test]
    fn bipartite_graph_has_no_triangles() {
        // K_{3,3}: triangle-free.
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 3..6 {
                edges.push((u, v));
            }
        }
        let a = BitMatrix::from_edges(6, &edges).unwrap();
        assert_eq!(a.triangle_count_trace(), 0);
        assert_eq!(a.triangle_count_bitwise().unwrap(), 0);
    }

    #[test]
    fn cycle_graphs() {
        // C3 = one triangle, C5 = none.
        let c3 = BitMatrix::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(c3.triangle_count_trace(), 1);
        let c5 = BitMatrix::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        assert_eq!(c5.triangle_count_trace(), 0);
        assert_eq!(c5.triangle_count_bitwise().unwrap(), 0);
    }

    #[test]
    fn transpose_involution() {
        let a = BitMatrix::from_edges(4, &FIG2).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn column_matches_transpose_row() {
        let a = BitMatrix::from_edges(4, &FIG2).unwrap();
        let t = a.transpose();
        for j in 0..4 {
            assert_eq!(&a.column(j), t.row(j));
        }
    }

    #[test]
    fn mul_counts_a2_entry_is_path_count() {
        let a = BitMatrix::from_edges_symmetric(4, &FIG2).unwrap();
        let a2 = a.mul_counts(&a).unwrap();
        // Paths of length 2 from 0 to 3: 0-1-3 and 0-2-3.
        assert_eq!(a2[0][3], 2);
        // A²[i][i] = degree(i).
        assert_eq!(a2[0][0], 2);
        assert_eq!(a2[1][1], 3);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(BitMatrix::from_edges(3, &[(1, 1)]).is_err());
    }

    #[test]
    fn out_of_bounds_vertex_rejected() {
        let err = BitMatrix::from_edges(3, &[(0, 3)]).unwrap_err();
        assert_eq!(err, BitMatrixError::DimensionOutOfBounds { index: 3, dim: 3 });
    }

    #[test]
    fn empty_matrix_counts_zero() {
        let a = BitMatrix::new(0);
        assert_eq!(a.triangle_count_trace(), 0);
        assert_eq!(a.triangle_count_bitwise().unwrap(), 0);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", BitMatrix::new(2)).is_empty());
    }
}
