//! A growable bit vector backed by `u64` words.

use std::fmt;

use crate::error::{BitMatrixError, Result};
use crate::popcount::{popcount_words, PopcountMethod};

const WORD_BITS: usize = 64;

/// A fixed-length vector of bits stored in little-endian `u64` words.
///
/// `BitVec` is the uncompressed representation of one row or column of an
/// adjacency matrix. Bit `i` lives in word `i / 64` at position `i % 64`.
/// All bits beyond `len` are kept at zero (an internal invariant every
/// mutating method maintains), so whole-word operations such as
/// [`BitVec::count_ones`] need no masking.
///
/// # Example
///
/// ```
/// use tcim_bitmatrix::BitVec;
///
/// let mut v = BitVec::new(8);
/// v.set(1);
/// v.set(2);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(1));
/// assert!(!v.get(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a zeroed bit vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// Creates a bit vector of `len` bits with the given indices set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices<I>(len: usize, indices: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut v = BitVec::new(len);
        for i in indices {
            v.set(i);
        }
        v
    }

    /// Reconstructs a bit vector from raw little-endian words.
    ///
    /// Bits beyond `len` in the last word are cleared to preserve the
    /// trailing-zeros invariant.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        let mut v = BitVec { words, len };
        v.words.resize(len.div_ceil(WORD_BITS), 0);
        v.mask_tail();
        v
    }

    fn mask_tail(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words, little-endian, trailing bits zeroed.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`. Use [`BitVec::try_get`] for a fallible
    /// variant.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of bounds");
        self.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1
    }

    /// Reads bit `index`, returning an error when out of bounds.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::IndexOutOfBounds`] if `index >= len`.
    pub fn try_get(&self, index: usize) -> Result<bool> {
        if index < self.len {
            Ok(self.get(index))
        } else {
            Err(BitMatrixError::IndexOutOfBounds { index, len: self.len })
        }
    }

    /// Sets bit `index` to one.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.len, "bit index {index} out of bounds");
        self.words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
    }

    /// Clears bit `index` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "bit index {index} out of bounds");
        self.words[index / WORD_BITS] &= !(1u64 << (index % WORD_BITS));
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        popcount_words(&self.words, PopcountMethod::Native)
    }

    /// Number of set bits using an explicit popcount strategy (used to
    /// validate the LUT path against the native one).
    pub fn count_ones_with(&self, method: PopcountMethod) -> u64 {
        popcount_words(&self.words, method)
    }

    /// `popcount(self AND other)` without materialising the intermediate
    /// vector — the software analogue of the TCIM kernel.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::LengthMismatch`] when lengths differ.
    pub fn and_popcount(&self, other: &BitVec) -> Result<u64> {
        if self.len != other.len {
            return Err(BitMatrixError::LengthMismatch { left: self.len, right: other.len });
        }
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| u64::from((a & b).count_ones()))
            .sum())
    }

    /// Element-wise AND, producing a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::LengthMismatch`] when lengths differ.
    pub fn and(&self, other: &BitVec) -> Result<BitVec> {
        if self.len != other.len {
            return Err(BitMatrixError::LengthMismatch { left: self.len, right: other.len });
        }
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| a & b).collect();
        Ok(BitVec { words, len: self.len })
    }

    /// Element-wise OR, producing a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`BitMatrixError::LengthMismatch`] when lengths differ.
    pub fn or(&self, other: &BitVec) -> Result<BitVec> {
        if self.len != other.len {
            return Err(BitMatrixError::LengthMismatch { left: self.len, right: other.len });
        }
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| a | b).collect();
        Ok(BitVec { words, len: self.len })
    }

    /// Iterates over the indices of set bits in ascending order.
    ///
    /// # Example
    ///
    /// ```
    /// use tcim_bitmatrix::BitVec;
    ///
    /// let v = BitVec::from_indices(100, [3, 65, 99]);
    /// let ones: Vec<usize> = v.iter_ones().collect();
    /// assert_eq!(ones, vec![3, 65, 99]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(len={}, ones=[", self.len)?;
        for (n, i) in self.iter_ones().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            if n >= 16 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{i}")?;
        }
        write!(f, "])")
    }
}

impl fmt::Binary for BitVec {
    /// Formats the vector MSB-last (bit 0 printed first), matching the
    /// row-vector notation used in the paper's Fig. 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = BitVec::new(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if *b {
                v.set(i);
            }
        }
        v
    }
}

/// Iterator over set-bit indices, created by [`BitVec::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.is_empty());
        assert!(BitVec::new(0).is_empty());
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(200);
        for i in [0, 63, 64, 127, 128, 199] {
            assert!(!v.get(i));
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 6);
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 5);
        v.clear_all();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitVec::new(8).get(8);
    }

    #[test]
    fn try_get_reports_error() {
        let v = BitVec::new(8);
        assert_eq!(v.try_get(9), Err(BitMatrixError::IndexOutOfBounds { index: 9, len: 8 }));
        assert_eq!(v.try_get(7), Ok(false));
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(vec![u64::MAX], 10);
        assert_eq!(v.count_ones(), 10);
        assert_eq!(v.words()[0], 0x3FF);
    }

    #[test]
    fn and_popcount_matches_materialised_and() {
        let a = BitVec::from_indices(300, [0, 5, 70, 150, 299]);
        let b = BitVec::from_indices(300, [5, 70, 151, 299]);
        let anded = a.and(&b).unwrap();
        assert_eq!(a.and_popcount(&b).unwrap(), anded.count_ones());
        assert_eq!(a.and_popcount(&b).unwrap(), 3);
    }

    #[test]
    fn or_unions_bits() {
        let a = BitVec::from_indices(70, [1, 65]);
        let b = BitVec::from_indices(70, [2, 65]);
        let o = a.or(&b).unwrap();
        assert_eq!(o.iter_ones().collect::<Vec<_>>(), vec![1, 2, 65]);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let a = BitVec::new(64);
        let b = BitVec::new(65);
        assert!(matches!(
            a.and_popcount(&b),
            Err(BitMatrixError::LengthMismatch { left: 64, right: 65 })
        ));
        assert!(a.and(&b).is_err());
        assert!(a.or(&b).is_err());
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let idx = vec![0, 1, 63, 64, 65, 191, 192];
        let v = BitVec::from_indices(193, idx.clone());
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn from_iterator_of_bools() {
        let v: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn binary_format_matches_paper_notation() {
        // Row R0 of the paper's Fig. 2 example: 0110.
        let v = BitVec::from_indices(4, [1, 2]);
        assert_eq!(format!("{v:b}"), "0110");
    }

    #[test]
    fn debug_is_never_empty() {
        let v = BitVec::new(0);
        assert!(!format!("{v:?}").is_empty());
    }

    #[test]
    fn count_ones_with_lut_agrees() {
        let v = BitVec::from_indices(500, (0..500).step_by(7));
        assert_eq!(
            v.count_ones_with(PopcountMethod::Lut8),
            v.count_ones_with(PopcountMethod::Native)
        );
    }
}
