//! Error type shared by the bit-matrix substrate.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BitMatrixError>;

/// Errors raised by bit-vector and sliced-matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitMatrixError {
    /// A bit index was at or beyond the length of the vector.
    IndexOutOfBounds {
        /// The offending bit index.
        index: usize,
        /// The vector length in bits.
        len: usize,
    },
    /// Two operands of a binary bit operation had different lengths.
    LengthMismatch {
        /// Length of the left operand in bits.
        left: usize,
        /// Length of the right operand in bits.
        right: usize,
    },
    /// Two sliced operands were built with different slice sizes.
    SliceSizeMismatch {
        /// Slice size of the left operand in bits.
        left: u32,
        /// Slice size of the right operand in bits.
        right: u32,
    },
    /// A requested slice size is not supported (must be a power of two
    /// between 8 and 4096 bits).
    InvalidSliceSize {
        /// The rejected size in bits.
        bits: u32,
    },
    /// A matrix operation received a row or column index beyond the matrix
    /// dimension.
    DimensionOutOfBounds {
        /// The offending row/column index.
        index: usize,
        /// The matrix dimension.
        dim: usize,
    },
    /// An undirected edge had both endpoints on the same vertex. The
    /// adjacency matrices of this crate describe simple graphs, whose
    /// diagonal is always zero.
    SelfLoop {
        /// The vertex looping onto itself.
        vertex: usize,
    },
    /// An undirected edge was added twice (in either endpoint order).
    DuplicateEdge {
        /// Smaller endpoint of the duplicated edge.
        u: usize,
        /// Larger endpoint of the duplicated edge.
        v: usize,
    },
    /// Two row operands used different physical encodings, or a
    /// dense-only view was requested of a sparse row. Matrix rows and
    /// columns always share one encoding; mixing indicates operands from
    /// differently prepared artifacts.
    EncodingMismatch,
}

impl fmt::Display for BitMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BitMatrixError::IndexOutOfBounds { index, len } => {
                write!(f, "bit index {index} out of bounds for length {len}")
            }
            BitMatrixError::LengthMismatch { left, right } => {
                write!(f, "bit-vector length mismatch: {left} vs {right}")
            }
            BitMatrixError::SliceSizeMismatch { left, right } => {
                write!(f, "slice size mismatch: {left} bits vs {right} bits")
            }
            BitMatrixError::InvalidSliceSize { bits } => {
                write!(f, "invalid slice size of {bits} bits")
            }
            BitMatrixError::DimensionOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            BitMatrixError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not a simple-graph edge")
            }
            BitMatrixError::DuplicateEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} was already added")
            }
            BitMatrixError::EncodingMismatch => {
                write!(f, "row encodings of the operands do not match")
            }
        }
    }
}

impl Error for BitMatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BitMatrixError::IndexOutOfBounds { index: 9, len: 8 };
        assert_eq!(e.to_string(), "bit index 9 out of bounds for length 8");
        let e = BitMatrixError::LengthMismatch { left: 1, right: 2 };
        assert_eq!(e.to_string(), "bit-vector length mismatch: 1 vs 2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitMatrixError>();
    }
}
