//! Bit-vector and sliced bit-matrix substrate for the TCIM reproduction.
//!
//! The TCIM paper (Wang et al., DAC 2020) reformulates triangle counting as
//! massive bitwise `AND` + `BitCount` operations over rows and columns of the
//! adjacency matrix, and compresses those rows/columns with a *data slicing*
//! scheme (§IV-B): a row of `|V|` bits is split into slices of `|S|` bits and
//! only the *valid* (non-zero) slices are stored as `(index, data)` pairs.
//!
//! This crate provides the data-structure layer of that scheme, independent of
//! any graph or hardware model:
//!
//! * [`BitVec`] — a growable bit vector backed by `u64` words.
//! * [`SliceSize`] — the `|S|` parameter with its derived geometry.
//! * [`SlicedBitVector`] — the compressed `(valid slice index, slice data)`
//!   representation, including the paper's byte-size accounting
//!   `NVS × (|S|/8 + 4)`.
//! * [`SparseSlicedRow`] — the hierarchical sparse encoding: summary
//!   bitmasks over packed non-zero payload bytes, with a two-level
//!   skip-empty intersection walk.
//! * [`SlicedRow`] / [`RowEncoding`] / [`EncodingPolicy`] — the
//!   density-adaptive abstraction over both encodings; prepared graphs
//!   pick one per matrix from the measured valid-slice fraction.
//! * [`SlicedMatrix`] — every row and column of an adjacency matrix in sliced
//!   form, the input to the architecture simulator.
//! * [`BitMatrix`] — a small dense bit matrix used to verify the identity
//!   `TC(G) = trace(A³)/6` on reference graphs.
//! * [`popcount`] — bit-count implementations, including the hardware-faithful
//!   8-bit look-up-table used by the paper's synthesized bit-counter module.
//!
//! # Example
//!
//! ```
//! use tcim_bitmatrix::{BitVec, SliceSize, SlicedBitVector};
//!
//! // Row 0110…, column 1010… of some adjacency matrix.
//! let row = BitVec::from_indices(128, [1, 2, 70]);
//! let col = BitVec::from_indices(128, [0, 2, 70]);
//!
//! let s = SliceSize::S64;
//! let row = SlicedBitVector::from_bitvec(&row, s);
//! let col = SlicedBitVector::from_bitvec(&col, s);
//!
//! // AND + BitCount over valid slice pairs only (the TCIM kernel).
//! assert_eq!(row.and_popcount(&col), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod error;
mod matrix;
pub mod popcount;
mod row;
mod slice;
mod sliced;
mod sliced_matrix;
mod sparse;

pub use bitvec::BitVec;
pub use error::{BitMatrixError, Result};
pub use matrix::BitMatrix;
pub use popcount::PopcountMethod;
pub use row::{EncodingPolicy, PairStats, RowEncoding, SlicedRow};
pub use slice::SliceSize;
pub use sliced::{MatchingSlices, SlicedBitVector, ValidSlice};
pub use sliced_matrix::{matrices_built, SliceStats, SlicedMatrix, SlicedMatrixBuilder};
pub use sparse::SparseSlicedRow;
