//! Brinkman tunnelling model for the MgO barrier.
//!
//! The paper's device level "jointly use\[s\] the Brinkman model and the LLG
//! equation" (§V-A). The Brinkman–Dynes–Rowell model describes tunnelling
//! through a trapezoidal barrier of mean height `φ`, asymmetry `Δφ` and
//! thickness `d`:
//!
//! ```text
//! G(V)/G(0) = 1 − (A₀·Δφ / 16·φ^{3/2})·eV + (9/128)·(A₀²/φ)·(eV)²
//! A₀ = 4·d·√(2m*) / (3ħ)
//! ```
//!
//! with the zero-bias conductance per unit area given by the standard
//! practical form (`d` in Å, energies in eV, `m_r = m*/m_e`):
//!
//! ```text
//! G(0) = 3.16×10¹⁰ · √(m_r·φ) / d · exp(−1.025·d·√(m_r·φ))   [Ω⁻¹·cm⁻²]
//! ```
//!
//! Table I specifies the junction by `RA` product and thickness rather
//! than barrier height, so [`BrinkmanModel::calibrated`] solves the
//! inverse problem: find `φ` such that `1/G(0) = RA`.

use crate::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, HBAR};
use crate::error::{MtjError, Result};
use crate::params::MtjParams;

/// A calibrated Brinkman barrier model.
#[derive(Debug, Clone, PartialEq)]
pub struct BrinkmanModel {
    /// Mean barrier height `φ` in eV.
    pub barrier_height_ev: f64,
    /// Barrier asymmetry `Δφ` in eV (bottom vs. top electrode).
    pub asymmetry_ev: f64,
    /// Barrier thickness `d` in nm.
    pub thickness_nm: f64,
    /// Effective tunnelling mass ratio `m*/m_e` (0.4 is the accepted MgO
    /// value).
    pub effective_mass_ratio: f64,
}

impl BrinkmanModel {
    /// Standard MgO effective-mass ratio.
    pub const MGO_EFFECTIVE_MASS_RATIO: f64 = 0.4;

    /// Default barrier asymmetry for a CoFeB/MgO/CoFeB stack, in eV.
    pub const DEFAULT_ASYMMETRY_EV: f64 = 0.1;

    /// Calibrates the barrier height so the zero-bias specific resistance
    /// equals the Table I `RA` product at the Table I thickness.
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::InvalidParameter`] when no barrier height in
    /// `[0.01, 10]` eV reproduces the requested `RA` (unphysical inputs).
    pub fn calibrated(params: &MtjParams) -> Result<Self> {
        params.validate()?;
        let d_nm = params.oxide_thickness_nm;
        let target_g0_per_m2 = 1.0 / params.ra_product_ohm_m2; // Ω⁻¹·m⁻²
        let m_r = Self::MGO_EFFECTIVE_MASS_RATIO;

        // G(0) is monotone decreasing in φ once past its tiny-φ maximum;
        // bracket and bisect on the decreasing branch.
        let g0 = |phi_ev: f64| zero_bias_conductance_per_m2(phi_ev, d_nm, m_r);
        let (mut lo, mut hi) = (0.01f64, 10.0f64);
        // Move `lo` past the non-monotone toe if needed.
        while g0(lo) < target_g0_per_m2 && lo < hi {
            lo *= 1.5;
        }
        if g0(lo) < target_g0_per_m2 || g0(hi) > target_g0_per_m2 {
            return Err(MtjError::InvalidParameter {
                name: "ra_product_ohm_m2",
                value: params.ra_product_ohm_m2,
                requirement: "reachable by a 0.01–10 eV barrier at this thickness",
            });
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g0(mid) > target_g0_per_m2 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(BrinkmanModel {
            barrier_height_ev: 0.5 * (lo + hi),
            asymmetry_ev: Self::DEFAULT_ASYMMETRY_EV,
            thickness_nm: d_nm,
            effective_mass_ratio: m_r,
        })
    }

    /// Zero-bias conductance per unit area in Ω⁻¹·m⁻².
    pub fn zero_bias_conductance_per_m2(&self) -> f64 {
        zero_bias_conductance_per_m2(
            self.barrier_height_ev,
            self.thickness_nm,
            self.effective_mass_ratio,
        )
    }

    /// The Brinkman bias-dependence factor `G(V)/G(0)`.
    pub fn conductance_ratio(&self, bias_v: f64) -> f64 {
        let phi_j = self.barrier_height_ev * ELEMENTARY_CHARGE;
        let dphi_j = self.asymmetry_ev * ELEMENTARY_CHARGE;
        let ev_j = bias_v * ELEMENTARY_CHARGE;
        let d_m = self.thickness_nm * 1e-9;
        let m_star = self.effective_mass_ratio * ELECTRON_MASS;
        // A₀ = 4·d·√(2m*)/(3ħ), units J^(−1/2).
        let a0 = 4.0 * d_m * (2.0 * m_star).sqrt() / (3.0 * HBAR);
        let linear = a0 * dphi_j / (16.0 * phi_j.powf(1.5)) * ev_j;
        let quadratic = 9.0 / 128.0 * a0 * a0 / phi_j * ev_j * ev_j;
        1.0 - linear + quadratic
    }

    /// Parallel-state junction resistance at `bias_v`, in Ω, for a junction
    /// of `area_m2`.
    pub fn resistance_p_ohm(&self, area_m2: f64, bias_v: f64) -> f64 {
        1.0 / (self.zero_bias_conductance_per_m2() * area_m2 * self.conductance_ratio(bias_v))
    }

    /// TMR roll-off with bias: `TMR(V) = TMR₀ / (1 + (V/V_h)²)` with the
    /// conventional half-voltage `V_h = 0.5 V`.
    pub fn tmr_at_bias(&self, tmr0: f64, bias_v: f64) -> f64 {
        const V_HALF: f64 = 0.5;
        tmr0 / (1.0 + (bias_v / V_HALF).powi(2))
    }

    /// Antiparallel-state resistance at `bias_v`:
    /// `R_AP = R_P · (1 + TMR(V))`.
    pub fn resistance_ap_ohm(&self, area_m2: f64, bias_v: f64, tmr0: f64) -> f64 {
        self.resistance_p_ohm(area_m2, bias_v) * (1.0 + self.tmr_at_bias(tmr0, bias_v))
    }
}

/// Practical Brinkman/Simmons zero-bias conductance (Ω⁻¹·m⁻²):
/// `3.16e10·√(m_r φ)/d · exp(−1.025·d·√(m_r φ))` in Ω⁻¹·cm⁻² with `d` in Å,
/// converted to SI.
fn zero_bias_conductance_per_m2(phi_ev: f64, d_nm: f64, m_r: f64) -> f64 {
    let d_angstrom = d_nm * 10.0;
    let x = (m_r * phi_ev).sqrt();
    let g_per_cm2 = 3.16e10 * x / d_angstrom * (-1.025 * d_angstrom * x).exp();
    g_per_cm2 * 1.0e4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BrinkmanModel {
        BrinkmanModel::calibrated(&MtjParams::table_i()).unwrap()
    }

    #[test]
    fn calibration_reproduces_ra_product() {
        let p = MtjParams::table_i();
        let m = model();
        let ra = 1.0 / m.zero_bias_conductance_per_m2();
        assert!((ra - p.ra_product_ohm_m2).abs() / p.ra_product_ohm_m2 < 1e-6, "ra {ra:e}");
    }

    #[test]
    fn calibrated_barrier_is_physically_plausible() {
        let m = model();
        // Effective MgO barrier fits at low RA land in the 0.1–1.5 eV range.
        assert!(
            m.barrier_height_ev > 0.05 && m.barrier_height_ev < 1.5,
            "barrier {} eV",
            m.barrier_height_ev
        );
    }

    #[test]
    fn r_p_matches_ra_over_area() {
        let p = MtjParams::table_i();
        let m = model();
        let r_p = m.resistance_p_ohm(p.area_m2(), 0.0);
        // RA / A = 1e-12 / 1.6e-15 = 625 Ω.
        assert!((r_p - 625.0).abs() < 0.5, "r_p {r_p}");
    }

    #[test]
    fn r_ap_is_twice_r_p_at_zero_bias() {
        let p = MtjParams::table_i();
        let m = model();
        let r_p = m.resistance_p_ohm(p.area_m2(), 0.0);
        let r_ap = m.resistance_ap_ohm(p.area_m2(), 0.0, p.tmr);
        assert!((r_ap / r_p - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conductance_grows_with_bias_magnitude() {
        let m = model();
        let g0 = m.conductance_ratio(0.0);
        assert!((g0 - 1.0).abs() < 1e-12);
        // The quadratic term dominates at ±0.5 V: conductance rises.
        assert!(m.conductance_ratio(0.5) > 1.0);
        assert!(m.conductance_ratio(-0.5) > 1.0);
    }

    #[test]
    fn asymmetry_skews_the_parabola() {
        let m = model();
        // Positive Δφ suppresses positive bias relative to negative bias.
        assert!(m.conductance_ratio(-0.3) > m.conductance_ratio(0.3));
        let symmetric = BrinkmanModel { asymmetry_ev: 0.0, ..m };
        let diff =
            (symmetric.conductance_ratio(0.3) - symmetric.conductance_ratio(-0.3)).abs();
        assert!(diff < 1e-12);
    }

    #[test]
    fn thicker_barrier_is_more_resistive() {
        let m = model();
        let thicker = BrinkmanModel { thickness_nm: m.thickness_nm + 0.2, ..m.clone() };
        assert!(thicker.zero_bias_conductance_per_m2() < m.zero_bias_conductance_per_m2());
    }

    #[test]
    fn tmr_rolls_off_with_bias() {
        let m = model();
        assert!((m.tmr_at_bias(1.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((m.tmr_at_bias(1.0, 0.5) - 0.5).abs() < 1e-12);
        assert!(m.tmr_at_bias(1.0, 0.25) > m.tmr_at_bias(1.0, 0.5));
    }

    #[test]
    fn impossible_ra_is_rejected() {
        let mut p = MtjParams::table_i();
        p.ra_product_ohm_m2 = 1e-30; // far below any 0.82 nm barrier
        assert!(BrinkmanModel::calibrated(&p).is_err());
    }
}
