//! Physical constants (SI units) used across the device models.

/// Elementary charge `e` in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Reduced Planck constant `ħ` in J·s.
pub const HBAR: f64 = 1.054_571_817e-34;

/// Boltzmann constant `k_B` in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Vacuum permeability `μ0` in T·m/A.
pub const MU_0: f64 = 1.256_637_062e-6;

/// Electron mass `m_e` in kg.
pub const ELECTRON_MASS: f64 = 9.109_383_701_5e-31;

/// Gyromagnetic ratio `γ` in rad/(s·T); `γ0 = μ0·γ` converts A/m fields
/// to precession rates.
pub const GYROMAGNETIC_RATIO: f64 = 1.760_859_630e11;

/// `γ0 = μ0 · γ` in m/(A·s): precession rate per unit field in A/m.
pub const GAMMA_0: f64 = MU_0 * GYROMAGNETIC_RATIO;

/// Electron-volt in joules.
pub const ELECTRON_VOLT: f64 = ELEMENTARY_CHARGE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma0_magnitude() {
        // γ0 ≈ 2.213 × 10^5 m/(A·s), the standard LLG prefactor.
        assert!((GAMMA_0 - 2.213e5).abs() / 2.213e5 < 1e-3);
    }

    #[test]
    fn thermal_energy_at_room_temperature() {
        let kt = BOLTZMANN * 300.0;
        // kT ≈ 25.9 meV at 300 K.
        assert!((kt / ELECTRON_VOLT - 0.0259).abs() < 5e-4);
    }
}
