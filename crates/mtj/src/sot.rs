//! Spin-orbit-torque (SOT/SHE) assisted write — the reason Table I lists
//! a spin Hall angle.
//!
//! The paper's Table I includes `Spin Hall Angle = 0.3`, the signature of
//! a three-terminal cell option in which the write current flows through
//! a heavy-metal strip *under* the free layer instead of through the
//! tunnel barrier. The spin Hall effect converts the in-plane charge
//! current into a perpendicular spin current with efficiency
//!
//! ```text
//! a_J = ħ · θ_SH · J_HM / (2 · e · μ₀ · M_s · t_f)
//! ```
//!
//! Two practical consequences, both modelled here:
//!
//! * the write path is the low-resistance heavy metal, so the voltage
//!   and per-write energy drop and the barrier is never stressed;
//! * the cell needs a second access transistor (2T1R), costing area.
//!
//! The magnetization dynamics are integrated by the same LLG solver as
//! the STT path ([`crate::llg::LlgSolver::simulate_switching_with_field`]),
//! so the two write mechanisms are compared on identical physics.

use crate::cell::MtjCell;
use crate::constants::{ELEMENTARY_CHARGE, HBAR, MU_0};
use crate::error::{MtjError, Result};
use crate::llg::LlgSolver;
use crate::params::MtjParams;

/// Geometry and material of the heavy-metal (e.g. β-W) write line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SotParams {
    /// Heavy-metal strip thickness (nm). β-W lines run 3–5 nm.
    pub heavy_metal_thickness_nm: f64,
    /// Heavy-metal resistivity (Ω·m). β-W: ≈ 2 µΩ·m.
    pub heavy_metal_resistivity_ohm_m: f64,
    /// Strip length under the junction as a multiple of the MTJ length
    /// (contacts on both sides).
    pub strip_length_factor: f64,
}

impl Default for SotParams {
    fn default() -> Self {
        SotParams {
            heavy_metal_thickness_nm: 3.0,
            heavy_metal_resistivity_ohm_m: 2.0e-6,
            strip_length_factor: 2.0,
        }
    }
}

/// Characterized SOT write path, comparable field-by-field with the STT
/// quantities in [`MtjCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct SotCharacteristics {
    /// Resistance of the heavy-metal write line (Ω).
    pub heavy_metal_resistance_ohm: f64,
    /// Critical charge current through the strip (A).
    pub critical_current_a: f64,
    /// Write current at the configured write voltage (A).
    pub write_current_a: f64,
    /// Switching latency at that current, from the LLG solver (s).
    pub write_latency_s: f64,
    /// Write energy per bit: `I² · R_HM · t_switch` (J).
    pub write_energy_j: f64,
    /// Area factor relative to the 1T1R STT cell (the extra transistor).
    pub cell_area_factor: f64,
}

/// The SOT-assisted write model.
#[derive(Debug, Clone, PartialEq)]
pub struct SotWriteModel {
    mtj: MtjParams,
    sot: SotParams,
}

impl SotWriteModel {
    /// Builds the model from validated device parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::InvalidParameter`] for unphysical inputs
    /// (including a zero spin Hall angle, which disables SOT entirely).
    pub fn new(mtj: &MtjParams, sot: SotParams) -> Result<Self> {
        mtj.validate()?;
        if mtj.spin_hall_angle <= 0.0 {
            return Err(MtjError::InvalidParameter {
                name: "spin_hall_angle",
                value: mtj.spin_hall_angle,
                requirement: "positive for a SOT write path",
            });
        }
        for (name, value) in [
            ("heavy_metal_thickness_nm", sot.heavy_metal_thickness_nm),
            ("heavy_metal_resistivity_ohm_m", sot.heavy_metal_resistivity_ohm_m),
            ("strip_length_factor", sot.strip_length_factor),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(MtjError::InvalidParameter {
                    name,
                    value,
                    requirement: "positive and finite",
                });
            }
        }
        Ok(SotWriteModel { mtj: mtj.clone(), sot })
    }

    /// Heavy-metal line resistance: `ρ·L / (w·t)`.
    pub fn heavy_metal_resistance_ohm(&self) -> f64 {
        let w = self.mtj.surface_width_nm * 1e-9;
        let t = self.sot.heavy_metal_thickness_nm * 1e-9;
        let l = self.mtj.surface_length_nm * 1e-9 * self.sot.strip_length_factor;
        self.sot.heavy_metal_resistivity_ohm_m * l / (w * t)
    }

    /// Spin-torque field (A/m) produced by charge current `current_a`
    /// through the strip cross-section.
    pub fn spin_torque_field_a_per_m(&self, current_a: f64) -> f64 {
        let w = self.mtj.surface_width_nm * 1e-9;
        let t_hm = self.sot.heavy_metal_thickness_nm * 1e-9;
        let j_hm = current_a / (w * t_hm);
        HBAR * self.mtj.spin_hall_angle * j_hm
            / (2.0
                * ELEMENTARY_CHARGE
                * MU_0
                * self.mtj.saturation_magnetization_a_per_m
                * (self.mtj.free_layer_thickness_nm * 1e-9))
    }

    /// Critical charge current: the current whose spin-torque field equals
    /// the STT instability threshold `α·H_k` (same macrospin criterion as
    /// the STT path, so the two mechanisms are directly comparable).
    pub fn critical_current_a(&self) -> f64 {
        let threshold = self.mtj.gilbert_damping * self.mtj.anisotropy_field_a_per_m;
        // a_J is linear in current: invert at unit current.
        threshold / self.spin_torque_field_a_per_m(1.0)
    }

    /// Runs the full SOT characterization at the cell's write voltage.
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::SolverDidNotConverge`] when the write voltage
    /// cannot switch the free layer through the strip within the LLG
    /// horizon.
    pub fn characterize(&self) -> Result<SotCharacteristics> {
        let r_hm = self.heavy_metal_resistance_ohm();
        let write_current = self.mtj.write_voltage_v / r_hm;
        let solver = LlgSolver::new(&self.mtj)?;
        let a_j = self.spin_torque_field_a_per_m(write_current);
        let result = solver.simulate_switching_with_field(a_j);
        if !result.switched {
            return Err(MtjError::SolverDidNotConverge { simulated_s: solver.max_time_s });
        }
        Ok(SotCharacteristics {
            heavy_metal_resistance_ohm: r_hm,
            critical_current_a: self.critical_current_a(),
            write_current_a: write_current,
            write_latency_s: result.time_s,
            write_energy_j: write_current * write_current * r_hm * result.time_s,
            // One extra (write) transistor over the 1T1R STT cell.
            cell_area_factor: 1.5,
        })
    }
}

/// Side-by-side comparison of the two write mechanisms for one device.
///
/// # Errors
///
/// Propagates characterization failures from either path.
///
/// # Example
///
/// ```
/// use tcim_mtj::sot::{compare_write_mechanisms, SotParams};
/// use tcim_mtj::MtjParams;
///
/// let (stt, sot) = compare_write_mechanisms(&MtjParams::table_i(), SotParams::default())?;
/// // The SHE path writes with less energy per bit …
/// assert!(sot.write_energy_j < stt.write_energy_j);
/// // … at the cost of cell area.
/// assert!(sot.cell_area_factor > 1.0);
/// # Ok::<(), tcim_mtj::MtjError>(())
/// ```
pub fn compare_write_mechanisms(
    mtj: &MtjParams,
    sot: SotParams,
) -> Result<(MtjCell, SotCharacteristics)> {
    let stt = MtjCell::characterize(mtj)?;
    let sot = SotWriteModel::new(mtj, sot)?.characterize()?;
    Ok((stt, sot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SotWriteModel {
        SotWriteModel::new(&MtjParams::table_i(), SotParams::default()).unwrap()
    }

    #[test]
    fn heavy_metal_resistance_magnitude() {
        // ρL/(wt) = 2e-6 · 80e-9 / (40e-9 · 3e-9) ≈ 1.3 kΩ.
        let r = model().heavy_metal_resistance_ohm();
        assert!((r - 1333.0).abs() < 10.0, "r = {r}");
    }

    #[test]
    fn sot_critical_current_lower_than_stt() {
        // θ_SH = 0.3 over a thin strip injects spin more efficiently per
        // ampere than tunnelling polarization P ≈ 0.58 through the MTJ:
        // the charge current sees the small strip cross-section.
        let sot = model();
        let stt = LlgSolver::new(&MtjParams::table_i()).unwrap();
        assert!(
            sot.critical_current_a() < stt.critical_current_a(),
            "sot {:e} vs stt {:e}",
            sot.critical_current_a(),
            stt.critical_current_a()
        );
    }

    #[test]
    fn characterization_is_consistent() {
        let c = model().characterize().unwrap();
        assert!(c.write_current_a > c.critical_current_a);
        assert!(c.write_latency_s > 0.01e-9 && c.write_latency_s < 50e-9);
        let expected_energy = c.write_current_a
            * c.write_current_a
            * c.heavy_metal_resistance_ohm
            * c.write_latency_s;
        assert!((c.write_energy_j - expected_energy).abs() < 1e-20);
    }

    #[test]
    fn sot_beats_stt_on_energy() {
        let (stt, sot) =
            compare_write_mechanisms(&MtjParams::table_i(), SotParams::default()).unwrap();
        assert!(
            sot.write_energy_j < stt.write_energy_j,
            "sot {:e} vs stt {:e}",
            sot.write_energy_j,
            stt.write_energy_j
        );
    }

    #[test]
    fn zero_hall_angle_is_rejected() {
        let mut p = MtjParams::table_i();
        p.spin_hall_angle = 0.0;
        assert!(SotWriteModel::new(&p, SotParams::default()).is_err());
    }

    #[test]
    fn bad_strip_geometry_is_rejected() {
        let bad = SotParams { heavy_metal_thickness_nm: 0.0, ..SotParams::default() };
        assert!(SotWriteModel::new(&MtjParams::table_i(), bad).is_err());
    }

    #[test]
    fn torque_scales_with_hall_angle() {
        let base = model().spin_torque_field_a_per_m(100e-6);
        let mut p = MtjParams::table_i();
        p.spin_hall_angle = 0.6;
        let doubled = SotWriteModel::new(&p, SotParams::default())
            .unwrap()
            .spin_torque_field_a_per_m(100e-6);
        assert!((doubled / base - 2.0).abs() < 1e-9);
    }
}
