//! Error type for the device models.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MtjError>;

/// Errors raised by device-parameter validation and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MtjError {
    /// A physical parameter was non-positive or otherwise unphysical.
    InvalidParameter {
        /// Parameter name as it appears in [`crate::MtjParams`].
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
    /// The LLG integration hit its step budget without the magnetization
    /// settling or switching.
    SolverDidNotConverge {
        /// Simulated time reached, in seconds.
        simulated_s: f64,
    },
}

impl fmt::Display for MtjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtjError::InvalidParameter { name, value, requirement } => {
                write!(f, "invalid parameter {name} = {value}: must be {requirement}")
            }
            MtjError::SolverDidNotConverge { simulated_s } => {
                write!(f, "llg solver did not converge after {simulated_s:.3e} s")
            }
        }
    }
}

impl Error for MtjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e =
            MtjError::InvalidParameter { name: "tmr", value: -1.0, requirement: "positive" };
        assert!(e.to_string().contains("tmr"));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MtjError>();
    }
}
