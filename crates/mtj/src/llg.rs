//! Macrospin Landau–Lifshitz–Gilbert dynamics with spin-transfer torque.
//!
//! The paper characterizes MTJ switching with the LLG equation (§V-A).
//! This module integrates the macrospin LLG with the Slonczewski
//! damping-like torque using a fixed-step RK4 scheme:
//!
//! ```text
//! dm/dt = −γ₀/(1+α²) · [ m×H_eff + α·m×(m×H_eff) ]
//!         −γ₀/(1+α²) · a_J · [ m×(m×p) − α·(m×p) ]
//! a_J = ħ·P·J / (2·e·μ₀·M_s·t_f)          (spin-torque field, A/m)
//! H_eff = H_k · m_z · ẑ                    (perpendicular anisotropy)
//! ```
//!
//! From the same parameters the module derives the analytic critical
//! current `I_c0 = 2·e·μ₀·M_s·t_f·A·α·H_k / (ħ·P)` and the thermal
//! stability factor `Δ = μ₀·M_s·H_k·V / (2·k_B·T)`, both of which are
//! cross-checked against the numerical solver in the test suite.

use crate::constants::{BOLTZMANN, ELEMENTARY_CHARGE, GAMMA_0, HBAR, MU_0};
use crate::error::{MtjError, Result};
use crate::params::MtjParams;

/// A 3-vector of magnetization direction cosines.
pub type Vec3 = [f64; 3];

fn cross(a: Vec3, b: Vec3) -> Vec3 {
    [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
}

fn axpy(y: &mut Vec3, a: f64, x: Vec3) {
    y[0] += a * x[0];
    y[1] += a * x[1];
    y[2] += a * x[2];
}

fn normalize(v: &mut Vec3) {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if n > 0.0 {
        v[0] /= n;
        v[1] /= n;
        v[2] /= n;
    }
}

/// Outcome of a switching simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingResult {
    /// Whether the magnetization reversed within the time budget.
    pub switched: bool,
    /// Time of reversal (s) when `switched`, else the simulated horizon.
    pub time_s: f64,
    /// Final magnetization direction.
    pub final_m: Vec3,
}

/// Fixed-step RK4 integrator for the macrospin LLG+STT equation.
///
/// # Example
///
/// ```
/// use tcim_mtj::llg::LlgSolver;
/// use tcim_mtj::MtjParams;
///
/// let solver = LlgSolver::new(&MtjParams::table_i())?;
/// let ic = solver.critical_current_a();
/// // Twice the critical current switches within a few nanoseconds.
/// let result = solver.simulate_switching(2.0 * ic);
/// assert!(result.switched);
/// assert!(result.time_s < 20e-9);
/// # Ok::<(), tcim_mtj::MtjError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LlgSolver {
    params: MtjParams,
    /// Integration step (s). Default 1 ps.
    pub dt_s: f64,
    /// Simulation horizon (s). Default 50 ns.
    pub max_time_s: f64,
}

impl LlgSolver {
    /// Creates a solver for the given device parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::InvalidParameter`] when the parameters fail
    /// validation.
    pub fn new(params: &MtjParams) -> Result<Self> {
        params.validate()?;
        Ok(LlgSolver { params: params.clone(), dt_s: 1e-12, max_time_s: 50e-9 })
    }

    /// Spin-torque field `a_J` (A/m) produced by `current_a` through the
    /// junction area.
    pub fn spin_torque_field_a_per_m(&self, current_a: f64) -> f64 {
        let p = &self.params;
        let j = current_a / p.area_m2();
        HBAR * p.spin_polarization() * j
            / (2.0
                * ELEMENTARY_CHARGE
                * MU_0
                * p.saturation_magnetization_a_per_m
                * (p.free_layer_thickness_nm * 1e-9))
    }

    /// Analytic zero-temperature critical current
    /// `I_c0 = 2·e·μ₀·M_s·t_f·A·α·H_k / (ħ·P)`.
    pub fn critical_current_a(&self) -> f64 {
        let p = &self.params;
        2.0 * ELEMENTARY_CHARGE
            * MU_0
            * p.saturation_magnetization_a_per_m
            * (p.free_layer_thickness_nm * 1e-9)
            * p.area_m2()
            * p.gilbert_damping
            * p.anisotropy_field_a_per_m
            / (HBAR * p.spin_polarization())
    }

    /// Thermal stability factor `Δ = μ₀·M_s·H_k·V / (2·k_B·T)`.
    pub fn thermal_stability(&self) -> f64 {
        let p = &self.params;
        MU_0 * p.saturation_magnetization_a_per_m
            * p.anisotropy_field_a_per_m
            * p.free_layer_volume_m3()
            / (2.0 * BOLTZMANN * p.temperature_k)
    }

    /// Expected retention time (s) via the Néel–Arrhenius law with the
    /// conventional attempt time `τ₀ = 1 ns`.
    pub fn retention_time_s(&self) -> f64 {
        1e-9 * self.thermal_stability().exp()
    }

    /// Thermal equilibrium initial tilt `θ₀ = √(1 / 2Δ)` used as the
    /// deterministic initial condition for switching runs.
    pub fn initial_tilt_rad(&self) -> f64 {
        (1.0 / (2.0 * self.thermal_stability())).sqrt()
    }

    /// One LLG right-hand side evaluation.
    fn rhs(&self, m: Vec3, a_j: f64, p_dir: Vec3) -> Vec3 {
        let prm = &self.params;
        let alpha = prm.gilbert_damping;
        let h_eff = [0.0, 0.0, prm.anisotropy_field_a_per_m * m[2]];

        let m_x_h = cross(m, h_eff);
        let m_x_m_x_h = cross(m, m_x_h);
        let m_x_p = cross(m, p_dir);
        let m_x_m_x_p = cross(m, m_x_p);

        let pref = -GAMMA_0 / (1.0 + alpha * alpha);
        let mut dm = [0.0, 0.0, 0.0];
        axpy(&mut dm, pref, m_x_h);
        axpy(&mut dm, pref * alpha, m_x_m_x_h);
        axpy(&mut dm, pref * a_j, m_x_m_x_p);
        axpy(&mut dm, -pref * alpha * a_j, m_x_p);
        dm
    }

    /// Simulates a P→AP-style reversal: the free layer starts near `+ẑ`
    /// (at the thermal tilt) and the spin polarization pushes it toward
    /// `−ẑ`. Positive `current_a` drives the reversal.
    pub fn simulate_switching(&self, current_a: f64) -> SwitchingResult {
        self.simulate_switching_with_field(self.spin_torque_field_a_per_m(current_a))
    }

    /// Simulates a reversal driven by an explicit spin-torque field `a_J`
    /// (A/m) regardless of how the spin current was generated — used by
    /// the SOT-assisted write model, where the torque comes from the spin
    /// Hall effect rather than tunnelling polarization.
    pub fn simulate_switching_with_field(&self, a_j: f64) -> SwitchingResult {
        let p_dir = [0.0, 0.0, -1.0];
        let theta0 = self.initial_tilt_rad();
        let mut m: Vec3 = [theta0.sin(), 0.0, theta0.cos()];
        let dt = self.dt_s;
        let steps = (self.max_time_s / dt).ceil() as usize;

        for step in 0..steps {
            // Classic RK4 with renormalization (unit-norm is an invariant
            // of the continuous equation, not of the discrete one).
            let k1 = self.rhs(m, a_j, p_dir);
            let mut m2 = m;
            axpy(&mut m2, dt / 2.0, k1);
            let k2 = self.rhs(m2, a_j, p_dir);
            let mut m3 = m;
            axpy(&mut m3, dt / 2.0, k2);
            let k3 = self.rhs(m3, a_j, p_dir);
            let mut m4 = m;
            axpy(&mut m4, dt, k3);
            let k4 = self.rhs(m4, a_j, p_dir);

            axpy(&mut m, dt / 6.0, k1);
            axpy(&mut m, dt / 3.0, k2);
            axpy(&mut m, dt / 3.0, k3);
            axpy(&mut m, dt / 6.0, k4);
            normalize(&mut m);

            if m[2] < -0.9 {
                return SwitchingResult {
                    switched: true,
                    time_s: (step + 1) as f64 * dt,
                    final_m: m,
                };
            }
        }
        SwitchingResult { switched: false, time_s: self.max_time_s, final_m: m }
    }

    /// Switching time (s) at `current_a`, or `None` when the current does
    /// not switch within the horizon.
    pub fn switching_time_s(&self, current_a: f64) -> Option<f64> {
        let r = self.simulate_switching(current_a);
        r.switched.then_some(r.time_s)
    }

    /// Samples the reversal trajectory at `samples` points for plotting:
    /// returns `(time_s, m)` pairs including the initial state.
    pub fn trajectory(&self, current_a: f64, samples: usize) -> Vec<(f64, Vec3)> {
        let a_j = self.spin_torque_field_a_per_m(current_a);
        let p_dir = [0.0, 0.0, -1.0];
        let theta0 = self.initial_tilt_rad();
        let mut m: Vec3 = [theta0.sin(), 0.0, theta0.cos()];
        let dt = self.dt_s;
        let steps = (self.max_time_s / dt).ceil() as usize;

        // Record every step, then downsample: the reversal may finish long
        // before the horizon, so a horizon-based stride would miss it.
        let mut full = vec![(0.0, m)];
        for step in 0..steps {
            let k1 = self.rhs(m, a_j, p_dir);
            let mut m2 = m;
            axpy(&mut m2, dt / 2.0, k1);
            let k2 = self.rhs(m2, a_j, p_dir);
            let mut m3 = m;
            axpy(&mut m3, dt / 2.0, k2);
            let k3 = self.rhs(m3, a_j, p_dir);
            let mut m4 = m;
            axpy(&mut m4, dt, k3);
            let k4 = self.rhs(m4, a_j, p_dir);
            axpy(&mut m, dt / 6.0, k1);
            axpy(&mut m, dt / 3.0, k2);
            axpy(&mut m, dt / 3.0, k3);
            axpy(&mut m, dt / 6.0, k4);
            normalize(&mut m);
            full.push(((step + 1) as f64 * dt, m));
            if m[2] < -0.95 {
                break;
            }
        }
        let stride = (full.len() / samples.max(2)).max(1);
        let last = *full.last().expect("trajectory holds the initial state");
        let mut out: Vec<(f64, Vec3)> = full.into_iter().step_by(stride).collect();
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }

    /// Numerically locates the switching threshold by bisecting the
    /// smallest current (within `tolerance_ratio`) that switches inside
    /// the solver horizon. Used to validate the analytic
    /// [`LlgSolver::critical_current_a`].
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::SolverDidNotConverge`] when even `8 × I_c0`
    /// fails to switch (a symptom of a broken parameter set).
    pub fn numeric_critical_current_a(&self, tolerance_ratio: f64) -> Result<f64> {
        let ic0 = self.critical_current_a();
        let mut hi = 8.0 * ic0;
        if !self.simulate_switching(hi).switched {
            return Err(MtjError::SolverDidNotConverge { simulated_s: self.max_time_s });
        }
        let mut lo = 0.0;
        while (hi - lo) / ic0 > tolerance_ratio {
            let mid = 0.5 * (lo + hi);
            if self.simulate_switching(mid).switched {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> LlgSolver {
        LlgSolver::new(&MtjParams::table_i()).unwrap()
    }

    #[test]
    fn analytic_critical_current_magnitude() {
        // Hand calculation for Table I: ≈ 186 µA.
        let ic = solver().critical_current_a();
        assert!((ic - 185.7e-6).abs() / 185.7e-6 < 0.01, "ic = {ic:e}");
    }

    #[test]
    fn thermal_stability_for_table_i() {
        // Δ = μ0·Ms·Hk·V / 2kT ≈ 142 for Table I.
        let delta = solver().thermal_stability();
        assert!((delta - 142.0).abs() < 2.0, "delta = {delta}");
        // Retention is astronomically long at this Δ — just check > 10 y.
        assert!(solver().retention_time_s() > 10.0 * 3.15e7);
    }

    #[test]
    fn above_critical_switches_below_does_not() {
        let s = solver();
        let ic = s.critical_current_a();
        assert!(s.simulate_switching(1.5 * ic).switched);
        assert!(!s.simulate_switching(0.5 * ic).switched);
        assert!(s.switching_time_s(0.5 * ic).is_none());
    }

    #[test]
    fn switching_time_decreases_with_overdrive() {
        let s = solver();
        let ic = s.critical_current_a();
        let t2 = s.switching_time_s(2.0 * ic).unwrap();
        let t3 = s.switching_time_s(3.0 * ic).unwrap();
        let t4 = s.switching_time_s(4.0 * ic).unwrap();
        assert!(t2 > t3 && t3 > t4, "t2 {t2:e}, t3 {t3:e}, t4 {t4:e}");
        // Nanosecond regime at practical overdrives.
        assert!(t2 < 20e-9 && t4 > 0.1e-9);
    }

    #[test]
    fn numeric_threshold_matches_analytic() {
        let s = solver();
        let analytic = s.critical_current_a();
        let numeric = s.numeric_critical_current_a(0.05).unwrap();
        // Finite-horizon bisection lands near (and slightly above) I_c0.
        let ratio = numeric / analytic;
        assert!((0.9..2.0).contains(&ratio), "numeric/analytic = {ratio}");
    }

    #[test]
    fn trajectory_is_unit_norm_and_reverses() {
        let s = solver();
        let ic = s.critical_current_a();
        let traj = s.trajectory(3.0 * ic, 64);
        assert!(traj.len() > 2);
        for (_, m) in &traj {
            let n = (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-9, "norm drifted to {n}");
        }
        assert!(traj.first().unwrap().1[2] > 0.99);
        assert!(traj.last().unwrap().1[2] < -0.9);
    }

    #[test]
    fn spin_torque_field_scales_linearly_with_current() {
        let s = solver();
        let a1 = s.spin_torque_field_a_per_m(100e-6);
        let a2 = s.spin_torque_field_a_per_m(200e-6);
        assert!((a2 / a1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_rejected_at_construction() {
        let mut p = MtjParams::table_i();
        p.gilbert_damping = -0.1;
        assert!(LlgSolver::new(&p).is_err());
    }
}
