//! Monte-Carlo process-variation analysis of the sense margins.
//!
//! Multi-row sensing (the AND mode) is the part of the paper's design most
//! exposed to device variation: the `(1,1)` and `(1,0)` current levels are
//! only `I_P − I_AP` apart, and resistance spread narrows that further.
//! This module samples log-normal resistance variation per cell and
//! reports functional yield for READ and AND sensing — the analysis a
//! design team would run before trusting Fig. 4's reference placement.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::cell::MtjCell;
use crate::sense::SenseAmp;

/// Configuration for a variation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationConfig {
    /// Relative resistance sigma (σ/µ) per cell; 3–5 % is typical for a
    /// mature MTJ process.
    pub resistance_sigma: f64,
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig { resistance_sigma: 0.04, trials: 10_000, seed: 7 }
    }
}

/// Result of a Monte-Carlo yield run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationReport {
    /// Trials evaluated.
    pub trials: usize,
    /// Trials in which single-cell READ mis-classified either state.
    pub read_failures: usize,
    /// Trials in which two-cell AND mis-classified any input pair.
    pub and_failures: usize,
    /// Smallest AND margin observed across passing trials (A); negative
    /// values appear only in failing trials and are excluded.
    pub min_and_margin_a: f64,
}

impl VariationReport {
    /// READ yield in `[0, 1]`.
    pub fn read_yield(&self) -> f64 {
        1.0 - self.read_failures as f64 / self.trials as f64
    }

    /// AND yield in `[0, 1]`.
    pub fn and_yield(&self) -> f64 {
        1.0 - self.and_failures as f64 / self.trials as f64
    }
}

/// Runs the Monte-Carlo analysis for a characterized cell.
///
/// Every trial perturbs `R_P` and `R_AP` of two independent cells with
/// multiplicative Gaussian noise and checks all truth-table entries
/// against the *nominal* references — exactly the situation in silicon,
/// where the reference branch cannot track per-cell variation.
///
/// # Panics
///
/// Panics if `config.trials` is zero.
pub fn run_variation(cell: &MtjCell, config: &VariationConfig) -> VariationReport {
    assert!(config.trials > 0, "variation run needs at least one trial");
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let nominal = SenseAmp::from_cell(cell);
    let read_ref = nominal.read_margin().i_ref_a;
    let and_ref = nominal.and_margin().i_ref_a;
    let v = cell.params.read_voltage_v;

    let mut read_failures = 0usize;
    let mut and_failures = 0usize;
    let mut min_and_margin = f64::INFINITY;

    for _ in 0..config.trials {
        // Two independent cells (a row cell and a column cell).
        let sample = |r: f64, rng: &mut ChaCha12Rng| -> f64 {
            // Box–Muller keeps us off rand_distr (not in the offline set).
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
            r * (1.0 + config.resistance_sigma * z)
        };
        let r_p_a = sample(cell.r_p_ohm, &mut rng).max(1.0);
        let r_ap_a = sample(cell.r_ap_ohm, &mut rng).max(1.0);
        let r_p_b = sample(cell.r_p_ohm, &mut rng).max(1.0);
        let r_ap_b = sample(cell.r_ap_ohm, &mut rng).max(1.0);

        // READ check on cell A: both states must classify correctly.
        let i_p = v / r_p_a;
        let i_ap = v / r_ap_a;
        if !(i_p > read_ref && i_ap <= read_ref) {
            read_failures += 1;
        }

        // AND check across the four input pairs, using the appropriate
        // per-cell state resistance.
        let current = |bit_a: bool, bit_b: bool| -> f64 {
            let ra = if bit_a { r_p_a } else { r_ap_a };
            let rb = if bit_b { r_p_b } else { r_ap_b };
            v / ra + v / rb
        };
        let i11 = current(true, true);
        let worst_low = current(true, false).max(current(false, true));
        let ok = i11 > and_ref && worst_low <= and_ref;
        if ok {
            min_and_margin = min_and_margin.min((i11 - and_ref).min(and_ref - worst_low));
        } else {
            and_failures += 1;
        }
    }

    VariationReport {
        trials: config.trials,
        read_failures,
        and_failures,
        min_and_margin_a: if min_and_margin.is_finite() { min_and_margin } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MtjParams;

    fn cell() -> MtjCell {
        MtjCell::characterize(&MtjParams::table_i()).unwrap()
    }

    #[test]
    fn zero_variation_yields_perfectly() {
        let report = run_variation(
            &cell(),
            &VariationConfig { resistance_sigma: 0.0, trials: 100, seed: 1 },
        );
        assert_eq!(report.read_failures, 0);
        assert_eq!(report.and_failures, 0);
        assert!(report.min_and_margin_a > 0.0);
    }

    #[test]
    fn nominal_sigma_keeps_high_yield() {
        let report = run_variation(&cell(), &VariationConfig::default());
        assert!(report.read_yield() > 0.999, "read yield {}", report.read_yield());
        assert!(report.and_yield() > 0.95, "and yield {}", report.and_yield());
    }

    #[test]
    fn extreme_sigma_degrades_and_before_read() {
        let config = VariationConfig { resistance_sigma: 0.20, trials: 4_000, seed: 3 };
        let report = run_variation(&cell(), &config);
        assert!(
            report.and_failures > report.read_failures,
            "and {} vs read {}",
            report.and_failures,
            report.read_failures
        );
        assert!(report.and_yield() < 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_variation(&cell(), &VariationConfig::default());
        let b = run_variation(&cell(), &VariationConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        run_variation(
            &cell(),
            &VariationConfig { resistance_sigma: 0.01, trials: 0, seed: 0 },
        );
    }
}
