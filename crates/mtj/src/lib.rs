//! MTJ device-level models for the TCIM reproduction.
//!
//! The paper characterizes its computational STT-MRAM cell "jointly
//! us\[ing\] the Brinkman model and Landau–Lifshitz–Gilbert (LLG) equation"
//! (§V-A) with the parameters of Table I. This crate reimplements that
//! device level:
//!
//! * [`MtjParams`] — Table I verbatim, plus the handful of standard
//!   quantities the paper leaves implicit (free-layer thickness, spin
//!   polarization via Julliere's relation).
//! * [`brinkman`] — the Brinkman–Dynes–Rowell tunnelling model giving the
//!   junction's voltage-dependent conductance and `R_P`/`R_AP`.
//! * [`llg`] — a macrospin LLG solver with the Slonczewski spin-transfer
//!   torque term (RK4), yielding switching trajectories, switching time
//!   vs. write current, and the critical current.
//! * [`MtjCell`] — the derived electrical view: resistances, critical
//!   current, read/write latency and energy. This is what the NVSim-style
//!   array model consumes.
//! * [`sense`] — sense-amplifier reference design for both READ
//!   (`R_ref ∈ (R_P, R_AP)`) and the 2-row AND mode
//!   (`R_ref-AND ∈ (R_P∥P, R_P∥AP)`, Fig. 4), with margin analysis.
//! * [`variation`] — Monte-Carlo process/thermal variation on the sense
//!   margins.
//! * [`sot`] — the spin-orbit-torque (SHE) assisted write option implied
//!   by Table I's spin Hall angle, compared head-to-head with STT.
//!
//! # Example
//!
//! ```
//! use tcim_mtj::{MtjCell, MtjParams};
//!
//! let cell = MtjCell::characterize(&MtjParams::table_i())?;
//! // RA = 10 Ω·µm² over a 40 nm × 40 nm junction → R_P = 625 Ω.
//! assert!((cell.r_p_ohm - 625.0).abs() < 1.0);
//! // TMR = 100 % → R_AP ≈ 2 · R_P (slight roll-off at the 50 mV read bias).
//! assert!((cell.r_ap_ohm - 1250.0).abs() < 15.0);
//! # Ok::<(), tcim_mtj::MtjError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brinkman;
mod cell;
pub mod constants;
mod error;
pub mod llg;
mod params;
pub mod sense;
pub mod sot;
pub mod variation;

pub use cell::MtjCell;
pub use error::{MtjError, Result};
pub use params::MtjParams;
