//! Derived electrical characteristics of one 1T1R STT-MRAM bit-cell.

use crate::brinkman::BrinkmanModel;
use crate::error::Result;
use crate::llg::LlgSolver;
use crate::params::MtjParams;

/// The electrical view of one MTJ bit-cell, derived from [`MtjParams`] by
/// running the Brinkman model (resistances) and the LLG solver (switching
/// latency) — the device-level half of the paper's co-simulation flow.
///
/// This struct is plain data so the NVSim-style array model can consume it
/// without re-running the solvers.
///
/// # Example
///
/// ```
/// use tcim_mtj::{MtjCell, MtjParams};
///
/// let cell = MtjCell::characterize(&MtjParams::table_i())?;
/// assert!(cell.write_latency_s > 0.1e-9 && cell.write_latency_s < 50e-9);
/// assert!(cell.read_current_p_a > cell.read_current_ap_a);
/// # Ok::<(), tcim_mtj::MtjError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MtjCell {
    /// Parallel-state resistance at the read bias (Ω).
    pub r_p_ohm: f64,
    /// Antiparallel-state resistance at the read bias (Ω).
    pub r_ap_ohm: f64,
    /// Analytic critical switching current (A).
    pub critical_current_a: f64,
    /// Write current for the P→AP direction at the write voltage (A),
    /// limited by the parallel-state resistance.
    pub write_current_p2ap_a: f64,
    /// Write current for the AP→P direction at the write voltage (A),
    /// limited by the antiparallel-state resistance.
    pub write_current_ap2p_a: f64,
    /// Worst-case switching latency across both directions (s), from the
    /// LLG solver.
    pub write_latency_s: f64,
    /// Worst-case write energy per bit (J): `V_write · I · t_switch`.
    pub write_energy_j: f64,
    /// Read current through a parallel cell at the read voltage (A).
    pub read_current_p_a: f64,
    /// Read current through an antiparallel cell at the read voltage (A).
    pub read_current_ap_a: f64,
    /// Thermal stability factor Δ.
    pub thermal_stability: f64,
    /// The parameters this cell was characterized from.
    pub params: MtjParams,
}

impl MtjCell {
    /// Runs the device-level co-simulation for `params`.
    ///
    /// # Errors
    ///
    /// Returns a validation error for unphysical parameters, or a solver
    /// error when the write voltage cannot switch the junction within the
    /// LLG horizon (the cell would be unwritable).
    pub fn characterize(params: &MtjParams) -> Result<Self> {
        params.validate()?;
        let brinkman = BrinkmanModel::calibrated(params)?;
        let area = params.area_m2();

        let r_p = brinkman.resistance_p_ohm(area, params.read_voltage_v);
        let r_ap = brinkman.resistance_ap_ohm(area, params.read_voltage_v, params.tmr);

        // Write currents are limited by the *initial* state's resistance at
        // the (higher) write bias, where TMR has partially collapsed.
        let r_p_write = brinkman.resistance_p_ohm(area, params.write_voltage_v);
        let r_ap_write = brinkman.resistance_ap_ohm(area, params.write_voltage_v, params.tmr);
        let i_p2ap = params.write_voltage_v / r_p_write;
        let i_ap2p = params.write_voltage_v / r_ap_write;

        let solver = LlgSolver::new(params)?;
        let t_p2ap = solver.switching_time_s(i_p2ap).ok_or(
            crate::error::MtjError::SolverDidNotConverge { simulated_s: solver.max_time_s },
        )?;
        let t_ap2p = solver.switching_time_s(i_ap2p).ok_or(
            crate::error::MtjError::SolverDidNotConverge { simulated_s: solver.max_time_s },
        )?;

        let e_p2ap = params.write_voltage_v * i_p2ap * t_p2ap;
        let e_ap2p = params.write_voltage_v * i_ap2p * t_ap2p;

        Ok(MtjCell {
            r_p_ohm: r_p,
            r_ap_ohm: r_ap,
            critical_current_a: solver.critical_current_a(),
            write_current_p2ap_a: i_p2ap,
            write_current_ap2p_a: i_ap2p,
            write_latency_s: t_p2ap.max(t_ap2p),
            write_energy_j: e_p2ap.max(e_ap2p),
            read_current_p_a: params.read_voltage_v / r_p,
            read_current_ap_a: params.read_voltage_v / r_ap,
            thermal_stability: solver.thermal_stability(),
            params: params.clone(),
        })
    }

    /// TMR observed at the read bias: `R_AP/R_P − 1`.
    pub fn tmr_at_read(&self) -> f64 {
        self.r_ap_ohm / self.r_p_ohm - 1.0
    }

    /// Read-disturb safety factor: critical current over the largest read
    /// current. Values well above 1 mean reads cannot flip the cell.
    pub fn read_disturb_margin(&self) -> f64 {
        self.critical_current_a / self.read_current_p_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> MtjCell {
        MtjCell::characterize(&MtjParams::table_i()).unwrap()
    }

    #[test]
    fn resistances_match_table_i_geometry() {
        let c = cell();
        // RA/A = 625 Ω; small read-bias correction allowed.
        assert!((c.r_p_ohm - 625.0).abs() < 5.0, "r_p {}", c.r_p_ohm);
        // TMR barely rolls off at 50 mV: R_AP/R_P stays near 2.
        assert!(c.tmr_at_read() > 0.95, "tmr {}", c.tmr_at_read());
    }

    #[test]
    fn write_currents_exceed_critical() {
        let c = cell();
        assert!(c.write_current_p2ap_a > c.critical_current_a);
        assert!(c.write_current_ap2p_a > c.critical_current_a);
        // P-state path carries more current than AP-state path.
        assert!(c.write_current_p2ap_a > c.write_current_ap2p_a);
    }

    #[test]
    fn write_latency_in_nanosecond_regime() {
        let c = cell();
        assert!(
            c.write_latency_s > 0.1e-9 && c.write_latency_s < 20e-9,
            "latency {:e}",
            c.write_latency_s
        );
    }

    #[test]
    fn write_energy_in_sub_picojoule_regime() {
        // STT-MRAM bit writes run 10 fJ – a few pJ.
        let c = cell();
        assert!(
            c.write_energy_j > 1e-15 && c.write_energy_j < 5e-12,
            "energy {:e}",
            c.write_energy_j
        );
    }

    #[test]
    fn read_is_disturb_safe() {
        let c = cell();
        assert!(c.read_disturb_margin() > 1.5, "margin {}", c.read_disturb_margin());
    }

    #[test]
    fn unwritable_cell_is_an_error() {
        let mut p = MtjParams::table_i();
        p.write_voltage_v = 0.01; // far below the switching threshold
        assert!(MtjCell::characterize(&p).is_err());
    }

    #[test]
    fn characterization_is_deterministic() {
        assert_eq!(cell(), cell());
    }
}
