//! Sense-amplifier reference design for READ and in-memory logic modes.
//!
//! The paper's Fig. 4 enhances the sense amplifier with an extra reference
//! branch: `R_ref-READ ∈ (R_P, R_AP)` distinguishes the two states of one
//! cell, while `R_ref-AND ∈ (R_P∥P, R_P∥AP)` evaluates a bitwise AND of two
//! simultaneously-activated word lines — the key enabler of the TCIM
//! kernel. This module computes those references, the current margins on
//! either side, and the functional truth tables.
//!
//! Logic convention: logic `1` is the parallel (low-resistance,
//! high-current) state, matching the paper's AND construction where only
//! the `(1, 1)` combination must trip the high-current reference.

use crate::cell::MtjCell;

/// Sense margins around one reference: the currents of the two states to
/// be distinguished and the placed reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseMargin {
    /// Current of the logically-low side (A).
    pub i_low_a: f64,
    /// Current of the logically-high side (A).
    pub i_high_a: f64,
    /// The reference current (A).
    pub i_ref_a: f64,
    /// Worst-side margin: `min(i_high − i_ref, i_ref − i_low)` (A).
    pub margin_a: f64,
}

/// Sense-amplifier model for one column of the computational array.
///
/// # Example
///
/// ```
/// use tcim_mtj::sense::SenseAmp;
/// use tcim_mtj::{MtjCell, MtjParams};
///
/// let cell = MtjCell::characterize(&MtjParams::table_i())?;
/// let sa = SenseAmp::from_cell(&cell);
///
/// // AND truth table, evaluated through summed bit-line currents.
/// assert!(sa.and_output(true, true));
/// assert!(!sa.and_output(true, false));
/// assert!(!sa.and_output(false, false));
/// # Ok::<(), tcim_mtj::MtjError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAmp {
    v_read: f64,
    r_p: f64,
    r_ap: f64,
}

impl SenseAmp {
    /// Builds the sense model from a characterized cell, sensing at the
    /// cell's read voltage.
    pub fn from_cell(cell: &MtjCell) -> Self {
        SenseAmp { v_read: cell.params.read_voltage_v, r_p: cell.r_p_ohm, r_ap: cell.r_ap_ohm }
    }

    /// Builds the sense model from explicit resistances (used by the
    /// Monte-Carlo variation analysis).
    pub fn from_resistances(v_read: f64, r_p: f64, r_ap: f64) -> Self {
        SenseAmp { v_read, r_p, r_ap }
    }

    /// Current through a single cell storing `bit`.
    pub fn cell_current_a(&self, bit: bool) -> f64 {
        self.v_read / if bit { self.r_p } else { self.r_ap }
    }

    /// Summed current of two simultaneously activated cells — the Fig. 1
    /// `I_i,k + I_j,k` quantity.
    pub fn pair_current_a(&self, a: bool, b: bool) -> f64 {
        self.cell_current_a(a) + self.cell_current_a(b)
    }

    /// READ reference and margins: the reference current sits midway
    /// between `I_P` and `I_AP` (equivalently `R_ref-READ ∈ (R_P, R_AP)`).
    pub fn read_margin(&self) -> SenseMargin {
        let i_high = self.cell_current_a(true);
        let i_low = self.cell_current_a(false);
        let i_ref = 0.5 * (i_high + i_low);
        SenseMargin {
            i_low_a: i_low,
            i_high_a: i_high,
            i_ref_a: i_ref,
            margin_a: (i_high - i_ref).min(i_ref - i_low),
        }
    }

    /// AND reference and margins: distinguishes `(1,1)` (current `2·I_P`,
    /// resistance `R_P∥P`) from `(1,0)` (current `I_P + I_AP`, resistance
    /// `R_P∥AP`) — the paper's `R_ref-AND ∈ (R_P-P, R_P-AP)`.
    pub fn and_margin(&self) -> SenseMargin {
        let i_high = self.pair_current_a(true, true);
        let i_low = self.pair_current_a(true, false);
        let i_ref = 0.5 * (i_high + i_low);
        SenseMargin {
            i_low_a: i_low,
            i_high_a: i_high,
            i_ref_a: i_ref,
            margin_a: (i_high - i_ref).min(i_ref - i_low),
        }
    }

    /// OR reference and margins: distinguishes `(1,0)` from `(0,0)` — the
    /// "various logic functions" extension the paper mentions for
    /// different reference currents.
    pub fn or_margin(&self) -> SenseMargin {
        let i_high = self.pair_current_a(true, false);
        let i_low = self.pair_current_a(false, false);
        let i_ref = 0.5 * (i_high + i_low);
        SenseMargin {
            i_low_a: i_low,
            i_high_a: i_high,
            i_ref_a: i_ref,
            margin_a: (i_high - i_ref).min(i_ref - i_low),
        }
    }

    /// The AND reference expressed as a resistance, for comparison with the
    /// paper's `R_ref-AND ∈ (R_P∥P, R_P∥AP)` placement.
    pub fn and_reference_ohm(&self) -> f64 {
        self.v_read / self.and_margin().i_ref_a
    }

    /// Functional single-cell READ through the reference.
    pub fn read_output(&self, bit: bool) -> bool {
        self.cell_current_a(bit) > self.read_margin().i_ref_a
    }

    /// Functional two-cell AND through the reference — the hardware path of
    /// Equation (4).
    pub fn and_output(&self, a: bool, b: bool) -> bool {
        self.pair_current_a(a, b) > self.and_margin().i_ref_a
    }

    /// Functional two-cell OR through the lower reference.
    pub fn or_output(&self, a: bool, b: bool) -> bool {
        self.pair_current_a(a, b) > self.or_margin().i_ref_a
    }

    /// Functional two-cell NAND/NOR: the same sensing with the output
    /// latch inverted — free in hardware, listed for completeness of the
    /// paper's "various logic functions" claim.
    pub fn nand_output(&self, a: bool, b: bool) -> bool {
        !self.and_output(a, b)
    }

    /// See [`SenseAmp::nand_output`].
    pub fn nor_output(&self, a: bool, b: bool) -> bool {
        !self.or_output(a, b)
    }

    /// Functional two-cell XOR: `1` iff the summed current falls *between*
    /// the OR and AND references (exactly one cell parallel). Requires
    /// both reference branches — a two-comparator (or two-cycle) sense,
    /// the standard in-memory XOR construction.
    pub fn xor_output(&self, a: bool, b: bool) -> bool {
        let i = self.pair_current_a(a, b);
        i > self.or_margin().i_ref_a && i <= self.and_margin().i_ref_a
    }

    /// Summed current of three simultaneously activated cells
    /// (three-row activation).
    pub fn triple_current_a(&self, a: bool, b: bool, c: bool) -> f64 {
        self.cell_current_a(a) + self.cell_current_a(b) + self.cell_current_a(c)
    }

    /// Majority-of-three reference and margins: distinguishes two ones
    /// (`2·I_P + I_AP`) from one (`I_P + 2·I_AP`). Majority gates are the
    /// building block of in-memory adders, extending the architecture
    /// beyond the AND/BitCount kernel.
    pub fn maj_margin(&self) -> SenseMargin {
        let i_high = self.triple_current_a(true, true, false);
        let i_low = self.triple_current_a(true, false, false);
        let i_ref = 0.5 * (i_high + i_low);
        SenseMargin {
            i_low_a: i_low,
            i_high_a: i_high,
            i_ref_a: i_ref,
            margin_a: (i_high - i_ref).min(i_ref - i_low),
        }
    }

    /// Functional three-cell majority through the MAJ reference.
    pub fn maj_output(&self, a: bool, b: bool, c: bool) -> bool {
        self.triple_current_a(a, b, c) > self.maj_margin().i_ref_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MtjParams;

    fn sa() -> SenseAmp {
        SenseAmp::from_cell(&MtjCell::characterize(&MtjParams::table_i()).unwrap())
    }

    #[test]
    fn read_truth_table() {
        let sa = sa();
        assert!(sa.read_output(true));
        assert!(!sa.read_output(false));
    }

    #[test]
    fn and_truth_table_all_four() {
        let sa = sa();
        assert!(sa.and_output(true, true));
        assert!(!sa.and_output(true, false));
        assert!(!sa.and_output(false, true));
        assert!(!sa.and_output(false, false));
    }

    #[test]
    fn or_truth_table_all_four() {
        let sa = sa();
        assert!(sa.or_output(true, true));
        assert!(sa.or_output(true, false));
        assert!(sa.or_output(false, true));
        assert!(!sa.or_output(false, false));
    }

    #[test]
    fn margins_are_positive_at_nominal_corner() {
        let sa = sa();
        assert!(sa.read_margin().margin_a > 0.0);
        assert!(sa.and_margin().margin_a > 0.0);
        assert!(sa.or_margin().margin_a > 0.0);
    }

    #[test]
    fn and_reference_sits_between_parallel_combinations() {
        let sa = sa();
        let r_pp = sa.r_p / 2.0;
        let r_pap = sa.r_p * sa.r_ap / (sa.r_p + sa.r_ap);
        let r_ref = sa.and_reference_ohm();
        assert!(r_pp < r_ref && r_ref < r_pap, "{r_pp} < {r_ref} < {r_pap}");
    }

    #[test]
    fn and_margin_tighter_than_read_margin() {
        // Two-cell sensing halves the distinguishable resistance gap, so
        // the AND margin must be strictly smaller than the READ margin
        // relative to its signal swing.
        let sa = sa();
        let read = sa.read_margin();
        let and = sa.and_margin();
        let read_rel = read.margin_a / read.i_high_a;
        let and_rel = and.margin_a / and.i_high_a;
        assert!(and_rel < read_rel, "and {and_rel} vs read {read_rel}");
    }

    #[test]
    fn xor_truth_table_all_four() {
        let sa = sa();
        assert!(!sa.xor_output(true, true));
        assert!(sa.xor_output(true, false));
        assert!(sa.xor_output(false, true));
        assert!(!sa.xor_output(false, false));
    }

    #[test]
    fn nand_nor_truth_tables() {
        let sa = sa();
        assert!(!sa.nand_output(true, true));
        assert!(sa.nand_output(true, false));
        assert!(sa.nand_output(false, false));
        assert!(!sa.nor_output(true, true));
        assert!(!sa.nor_output(true, false));
        assert!(sa.nor_output(false, false));
    }

    #[test]
    fn majority_truth_table_all_eight() {
        let sa = sa();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let expected = (u8::from(a) + u8::from(b) + u8::from(c)) >= 2;
                    assert_eq!(sa.maj_output(a, b, c), expected, "maj({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn maj_margin_is_tightest() {
        // Three-row activation narrows the per-level gap further than
        // two-row AND sensing.
        let sa = sa();
        let and_rel = sa.and_margin().margin_a / sa.and_margin().i_high_a;
        let maj_rel = sa.maj_margin().margin_a / sa.maj_margin().i_high_a;
        assert!(maj_rel < and_rel, "maj {maj_rel} vs and {and_rel}");
    }

    #[test]
    fn degraded_tmr_shrinks_margins() {
        let nominal = sa();
        let degraded = SenseAmp::from_resistances(0.05, 625.0, 625.0 * 1.3);
        assert!(degraded.and_margin().margin_a < nominal.and_margin().margin_a);
        // Truth table still holds as long as R_AP > R_P.
        assert!(degraded.and_output(true, true));
        assert!(!degraded.and_output(true, false));
    }
}
