//! The paper's Table I MTJ simulation parameters.

use crate::error::{MtjError, Result};

/// MTJ device parameters, reproducing the paper's Table I plus the two
/// standard quantities the table leaves implicit (free-layer thickness and
/// the read voltage), with conventional values noted in DESIGN.md.
///
/// All fields are public because this is passive configuration data; use
/// [`MtjParams::validate`] (or any consumer constructor, which validates
/// internally) before trusting hand-edited values.
///
/// # Example
///
/// ```
/// use tcim_mtj::MtjParams;
///
/// let p = MtjParams::table_i();
/// assert_eq!(p.surface_length_nm, 40.0);
/// assert_eq!(p.tmr, 1.0);          // 100 %
/// p.validate()?;
/// # Ok::<(), tcim_mtj::MtjError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MtjParams {
    /// MTJ surface length (nm). Table I: 40 nm.
    pub surface_length_nm: f64,
    /// MTJ surface width (nm). Table I: 40 nm.
    pub surface_width_nm: f64,
    /// Spin Hall angle (dimensionless). Table I: 0.3. Used by the
    /// SHE-assisted write option; the plain STT write path does not need it.
    pub spin_hall_angle: f64,
    /// Resistance–area product (Ω·m²). Table I: 10⁻¹² Ω·m² (= 10 Ω·µm²).
    pub ra_product_ohm_m2: f64,
    /// Oxide (MgO) barrier thickness (nm). Table I: 0.82 nm.
    pub oxide_thickness_nm: f64,
    /// Tunnel magnetoresistance ratio as a fraction. Table I: 100 % → 1.0.
    pub tmr: f64,
    /// Saturation magnetization `M_s` (A/m). Table I: 10⁶ A/m.
    pub saturation_magnetization_a_per_m: f64,
    /// Gilbert damping constant `α`. Table I: 0.03.
    pub gilbert_damping: f64,
    /// Perpendicular magnetic anisotropy field `H_k` (A/m).
    /// Table I: 4.5 × 10⁵ A/m.
    pub anisotropy_field_a_per_m: f64,
    /// Operating temperature (K). Table I: 300 K.
    pub temperature_k: f64,
    /// Free-layer thickness (nm). Not in Table I; 1.3 nm is the
    /// conventional perpendicular free-layer value.
    pub free_layer_thickness_nm: f64,
    /// Read voltage across BL/SL (V). Not in Table I; 50 mV keeps the read
    /// current a safe factor below the critical current.
    pub read_voltage_v: f64,
    /// Write voltage across BL/SL (V). Not in Table I; 0.5 V is typical
    /// for 45 nm STT-MRAM designs (also NVSim's default regime).
    pub write_voltage_v: f64,
}

impl MtjParams {
    /// The exact Table I configuration.
    pub fn table_i() -> Self {
        MtjParams {
            surface_length_nm: 40.0,
            surface_width_nm: 40.0,
            spin_hall_angle: 0.3,
            ra_product_ohm_m2: 1.0e-12,
            oxide_thickness_nm: 0.82,
            tmr: 1.0,
            saturation_magnetization_a_per_m: 1.0e6,
            gilbert_damping: 0.03,
            anisotropy_field_a_per_m: 4.5e5,
            temperature_k: 300.0,
            free_layer_thickness_nm: 1.3,
            read_voltage_v: 0.05,
            write_voltage_v: 0.5,
        }
    }

    /// Junction area in m².
    pub fn area_m2(&self) -> f64 {
        self.surface_length_nm * 1e-9 * self.surface_width_nm * 1e-9
    }

    /// Free-layer volume in m³.
    pub fn free_layer_volume_m3(&self) -> f64 {
        self.area_m2() * self.free_layer_thickness_nm * 1e-9
    }

    /// Spin polarization `P` from Julliere's relation
    /// `TMR = 2P² / (1 − P²)`.
    pub fn spin_polarization(&self) -> f64 {
        (self.tmr / (self.tmr + 2.0)).sqrt()
    }

    /// Checks that every parameter is physical.
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        let positives = [
            ("surface_length_nm", self.surface_length_nm),
            ("surface_width_nm", self.surface_width_nm),
            ("ra_product_ohm_m2", self.ra_product_ohm_m2),
            ("oxide_thickness_nm", self.oxide_thickness_nm),
            ("tmr", self.tmr),
            ("saturation_magnetization_a_per_m", self.saturation_magnetization_a_per_m),
            ("gilbert_damping", self.gilbert_damping),
            ("anisotropy_field_a_per_m", self.anisotropy_field_a_per_m),
            ("temperature_k", self.temperature_k),
            ("free_layer_thickness_nm", self.free_layer_thickness_nm),
            ("read_voltage_v", self.read_voltage_v),
            ("write_voltage_v", self.write_voltage_v),
        ];
        for (name, value) in positives {
            if !(value > 0.0 && value.is_finite()) {
                return Err(MtjError::InvalidParameter {
                    name,
                    value,
                    requirement: "positive and finite",
                });
            }
        }
        if !(0.0..=1.0).contains(&self.spin_hall_angle) {
            return Err(MtjError::InvalidParameter {
                name: "spin_hall_angle",
                value: self.spin_hall_angle,
                requirement: "within [0, 1]",
            });
        }
        if self.gilbert_damping >= 1.0 {
            return Err(MtjError::InvalidParameter {
                name: "gilbert_damping",
                value: self.gilbert_damping,
                requirement: "well below 1",
            });
        }
        Ok(())
    }
}

impl Default for MtjParams {
    fn default() -> Self {
        MtjParams::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_is_valid() {
        MtjParams::table_i().validate().unwrap();
    }

    #[test]
    fn area_and_volume() {
        let p = MtjParams::table_i();
        assert!((p.area_m2() - 1.6e-15).abs() < 1e-20);
        assert!((p.free_layer_volume_m3() - 2.08e-24).abs() < 1e-28);
    }

    #[test]
    fn julliere_polarization_for_100_percent_tmr() {
        // TMR = 1 → P = sqrt(1/3) ≈ 0.577.
        let p = MtjParams::table_i();
        assert!((p.spin_polarization() - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_nonpositive_fields() {
        let mut p = MtjParams::table_i();
        p.tmr = 0.0;
        assert!(matches!(p.validate(), Err(MtjError::InvalidParameter { name: "tmr", .. })));
        let mut p = MtjParams::table_i();
        p.temperature_k = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_unphysical_damping_and_hall_angle() {
        let mut p = MtjParams::table_i();
        p.gilbert_damping = 1.5;
        assert!(p.validate().is_err());
        let mut p = MtjParams::table_i();
        p.spin_hall_angle = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn default_is_table_i() {
        assert_eq!(MtjParams::default(), MtjParams::table_i());
    }
}
