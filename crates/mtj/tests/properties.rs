//! Property-based tests of the device models: physical monotonicities
//! and total functions over the parameter space.

use proptest::prelude::*;
use tcim_mtj::brinkman::BrinkmanModel;
use tcim_mtj::llg::LlgSolver;
use tcim_mtj::sense::SenseAmp;
use tcim_mtj::MtjParams;

/// Parameter perturbations within a physically plausible envelope around
/// Table I.
fn params_strategy() -> impl Strategy<Value = MtjParams> {
    (
        20.0..80.0f64, // surface length nm
        20.0..80.0f64, // surface width nm
        0.5..2.0f64,   // TMR
        0.01..0.06f64, // damping
        2e5..8e5f64,   // anisotropy field
        0.9..1.6f64,   // free layer thickness nm
    )
        .prop_map(|(l, w, tmr, alpha, hk, tf)| MtjParams {
            surface_length_nm: l,
            surface_width_nm: w,
            tmr,
            gilbert_damping: alpha,
            anisotropy_field_a_per_m: hk,
            free_layer_thickness_nm: tf,
            ..MtjParams::table_i()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Julliere: polarization is strictly within (0, 1) for positive TMR.
    #[test]
    fn polarization_is_a_probability(p in params_strategy()) {
        let pol = p.spin_polarization();
        prop_assert!(pol > 0.0 && pol < 1.0, "P = {}", pol);
    }

    /// The analytic critical current grows with damping and anisotropy.
    #[test]
    fn critical_current_monotonicity(p in params_strategy()) {
        let base = LlgSolver::new(&p).unwrap().critical_current_a();
        let mut harder = p.clone();
        harder.gilbert_damping *= 1.5;
        harder.anisotropy_field_a_per_m *= 1.5;
        let harder_ic = LlgSolver::new(&harder).unwrap().critical_current_a();
        prop_assert!(harder_ic > base);
    }

    /// Brinkman calibration always reproduces the requested RA product.
    #[test]
    fn brinkman_calibration_inverts(p in params_strategy()) {
        let model = BrinkmanModel::calibrated(&p).unwrap();
        let ra = 1.0 / model.zero_bias_conductance_per_m2();
        prop_assert!((ra - p.ra_product_ohm_m2).abs() / p.ra_product_ohm_m2 < 1e-6);
    }

    /// Sense truth tables hold across the whole parameter envelope as
    /// long as the device has any TMR at all.
    #[test]
    fn logic_truth_tables_hold_everywhere(p in params_strategy()) {
        let cell = tcim_mtj::MtjCell::characterize(&p).unwrap();
        let sa = SenseAmp::from_cell(&cell);
        for a in [false, true] {
            for b in [false, true] {
                prop_assert_eq!(sa.and_output(a, b), a && b);
                prop_assert_eq!(sa.or_output(a, b), a || b);
                prop_assert_eq!(sa.xor_output(a, b), a ^ b);
                for c in [false, true] {
                    let maj = (u8::from(a) + u8::from(b) + u8::from(c)) >= 2;
                    prop_assert_eq!(sa.maj_output(a, b, c), maj);
                }
            }
        }
    }

    /// Switching time decreases monotonically with overdrive.
    #[test]
    fn switching_time_monotone_in_current(p in params_strategy(), k in 1.5..3.0f64) {
        let solver = LlgSolver::new(&p).unwrap();
        let ic = solver.critical_current_a();
        let slow = solver.switching_time_s(k * ic);
        let fast = solver.switching_time_s(2.0 * k * ic);
        if let (Some(slow), Some(fast)) = (slow, fast) {
            prop_assert!(fast < slow, "fast {} vs slow {}", fast, slow);
        }
    }

    /// Thermal stability scales linearly with volume.
    #[test]
    fn thermal_stability_scales_with_volume(p in params_strategy()) {
        let base = LlgSolver::new(&p).unwrap().thermal_stability();
        let mut doubled = p.clone();
        doubled.free_layer_thickness_nm *= 2.0;
        let double = LlgSolver::new(&doubled).unwrap().thermal_stability();
        prop_assert!((double / base - 2.0).abs() < 1e-9);
    }
}
