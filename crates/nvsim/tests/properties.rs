//! Property-based tests of the array model: cost monotonicities over the
//! organization space.

use proptest::prelude::*;
use tcim_mtj::{MtjCell, MtjParams};
use tcim_nvsim::{ArrayModel, ArrayOrganization};

fn org_strategy() -> impl Strategy<Value = ArrayOrganization> {
    (6u32..10, 6u32..10, 1usize..8, 1usize..16, 1usize..4).prop_map(
        |(rows_log2, cols_log2, subarrays, mats, banks)| ArrayOrganization {
            rows_per_subarray: 1 << rows_log2,
            cols_per_subarray: 1 << cols_log2,
            subarrays_per_mat: subarrays,
            mats_per_bank: mats,
            banks,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Characterization is total over valid organizations and produces
    /// physically ordered costs.
    #[test]
    fn characterization_is_physical(org in org_strategy()) {
        let cell = MtjCell::characterize(&MtjParams::table_i()).unwrap();
        let a = ArrayModel::characterize(&cell, &org).unwrap();
        prop_assert!(a.read_latency_s > 0.0);
        prop_assert!(a.write_latency_s > a.read_latency_s);
        prop_assert!(a.write_energy_per_bit_j > a.and_energy_per_bit_j);
        prop_assert!(a.and_energy_per_bit_j > a.read_energy_per_bit_j);
        prop_assert!(a.area_mm2 > 0.0);
        prop_assert!(a.leakage_w > 0.0);
    }

    /// Larger sub-arrays have slower accesses (longer lines, deeper
    /// decoders) but the chip area stays proportional to capacity.
    #[test]
    fn bigger_subarrays_are_slower(org in org_strategy()) {
        prop_assume!(org.rows_per_subarray <= 256 && org.cols_per_subarray <= 256);
        let cell = MtjCell::characterize(&MtjParams::table_i()).unwrap();
        let small = ArrayModel::characterize(&cell, &org).unwrap();
        let grown = ArrayOrganization {
            rows_per_subarray: org.rows_per_subarray * 4,
            cols_per_subarray: org.cols_per_subarray * 4,
            ..org
        };
        let big = ArrayModel::characterize(&cell, &grown).unwrap();
        prop_assert!(big.read_latency_s > small.read_latency_s);
        prop_assert!(big.area_mm2 > small.area_mm2);
    }

    /// Slice-energy accounting is exactly linear in the slice width.
    #[test]
    fn slice_energy_linear_in_width(org in org_strategy()) {
        let cell = MtjCell::characterize(&MtjParams::table_i()).unwrap();
        let a = ArrayModel::characterize(&cell, &org).unwrap();
        let fixed = 2.0 * a.row_activation_energy_j;
        let e64 = a.and_slice_energy_j(64) - fixed;
        let e128 = a.and_slice_energy_j(128) - fixed;
        prop_assert!((e128 / e64 - 2.0).abs() < 1e-9);
    }
}
