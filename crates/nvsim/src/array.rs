//! The NVSim-style roll-up: per-operation latency/energy/area for the
//! computational array.

use tcim_mtj::MtjCell;

use crate::error::Result;
use crate::organization::ArrayOrganization;
use crate::peripheral::{column_mux, row_decoder, sense_amps, write_drivers};
use crate::tech::TechNode;
use crate::wires::{bitline, htree_branch, wordline};

/// Bit-line voltage-swing fraction under current-mode sensing: the line
/// never swings rail to rail during a read/AND.
const READ_BITLINE_SWING: f64 = 0.1;

/// Characterized costs of every array operation the architecture needs.
///
/// Produced by [`ArrayModel::characterize`]; consumed by `tcim-arch` to
/// cost Algorithm 1's slice loads and `AND`/`BitCount` operations.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayCharacterization {
    /// READ latency: decode → word line → bit line → sense (s).
    pub read_latency_s: f64,
    /// Two-row AND latency — a read-class operation with the AND
    /// reference selected (s).
    pub and_latency_s: f64,
    /// WRITE latency: decode → word line → driver → MTJ switching (s).
    pub write_latency_s: f64,
    /// READ energy per sensed bit (J).
    pub read_energy_per_bit_j: f64,
    /// AND energy per sensed bit — two cells conduct simultaneously (J).
    pub and_energy_per_bit_j: f64,
    /// WRITE energy per bit, dominated by MTJ switching (J).
    pub write_energy_per_bit_j: f64,
    /// Fixed energy per row activation: decoder plus word line (J).
    pub row_activation_energy_j: f64,
    /// Global H-tree transfer energy per bit moved chip-wide (J).
    pub htree_energy_per_bit_j: f64,
    /// Global H-tree one-way latency (s).
    pub htree_latency_s: f64,
    /// Chip leakage power (W): peripheral CMOS only — MTJs are
    /// non-volatile and leak nothing.
    pub leakage_w: f64,
    /// Total die area (mm²).
    pub area_mm2: f64,
    /// The organization this characterization describes.
    pub organization: ArrayOrganization,
}

impl ArrayCharacterization {
    /// Energy of one slice-pair AND across `slice_bits` sense amplifiers,
    /// including the two row activations.
    pub fn and_slice_energy_j(&self, slice_bits: u32) -> f64 {
        2.0 * self.row_activation_energy_j + f64::from(slice_bits) * self.and_energy_per_bit_j
    }

    /// Energy of writing one `slice_bits`-wide slice into the array,
    /// including its row activation and the H-tree transfer.
    pub fn write_slice_energy_j(&self, slice_bits: u32) -> f64 {
        self.row_activation_energy_j
            + f64::from(slice_bits)
                * (self.write_energy_per_bit_j + self.htree_energy_per_bit_j)
    }

    /// Energy of reading one `slice_bits`-wide slice out of the array.
    pub fn read_slice_energy_j(&self, slice_bits: u32) -> f64 {
        self.row_activation_energy_j
            + f64::from(slice_bits)
                * (self.read_energy_per_bit_j + self.htree_energy_per_bit_j)
    }
}

/// Entry point of the array model.
#[derive(Debug, Clone, Default)]
pub struct ArrayModel {
    /// Technology node; defaults to FreePDK45.
    pub tech: TechNode,
}

impl ArrayModel {
    /// Characterizes `org` built from `cell` devices at the default 45 nm
    /// node — the paper's configuration.
    ///
    /// # Errors
    ///
    /// Returns an organization-validation error; the device inputs are
    /// already validated by construction of [`MtjCell`].
    pub fn characterize(
        cell: &MtjCell,
        org: &ArrayOrganization,
    ) -> Result<ArrayCharacterization> {
        ArrayModel::default().characterize_with(cell, org)
    }

    /// Characterizes with an explicit technology node.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NvsimError::InvalidOrganization`] when `org` fails
    /// validation.
    pub fn characterize_with(
        &self,
        cell: &MtjCell,
        org: &ArrayOrganization,
    ) -> Result<ArrayCharacterization> {
        org.validate()?;
        let tech = &self.tech;
        let rows = org.rows_per_subarray;
        let cols = org.cols_per_subarray;

        let wl = wordline(tech, cols);
        let bl = bitline(tech, rows);
        let dec = row_decoder(tech, rows);
        let mux = column_mux(tech, cols, cols);
        // One extra reference branch: the AND reference of Fig. 4.
        let sas = sense_amps(tech, cols, 1);
        let drivers = write_drivers(tech, cols);

        // --- Latency ---------------------------------------------------
        let sense_path = dec.latency_s
            + wl.elmore_delay_s()
            + bl.elmore_delay_s()
            + mux.latency_s
            + sas.latency_s;
        // Multi-row activation drives both word lines in parallel; decode
        // of the second address overlaps the first (two decoders per
        // sub-array in the modified periphery), so AND adds no latency.
        let read_latency = sense_path;
        let and_latency = sense_path;
        let write_latency =
            dec.latency_s + wl.elmore_delay_s() + drivers.latency_s + cell.write_latency_s;

        // --- Energy ----------------------------------------------------
        // Cell conduction during sensing: I·V over the sense window.
        let cell_read_e =
            cell.read_current_p_a * cell.params.read_voltage_v * tech.sense_amp_latency_s;
        let bl_read_e = bl.switch_energy_j(tech.vdd_v) * READ_BITLINE_SWING;
        let read_energy_per_bit = tech.sense_amp_energy_j + bl_read_e + cell_read_e;
        // AND: both selected cells conduct into the same sense node.
        let and_energy_per_bit = tech.sense_amp_energy_j + bl_read_e + 2.0 * cell_read_e;
        // WRITE: MTJ switching dominates; add the full-swing bit line and
        // the driver logic.
        let write_energy_per_bit = cell.write_energy_j
            + bl.switch_energy_j(cell.params.write_voltage_v)
            + 2.0 * tech.gate_energy_j;

        let row_activation = dec.energy_j + wl.switch_energy_j(tech.vdd_v);

        // --- Area ------------------------------------------------------
        let cell_area = org.total_bits() as f64 * tech.cell_area_m2();
        let per_subarray_peripherals =
            dec.area_m2 + mux.area_m2 + sas.area_m2 + drivers.area_m2;
        let peripheral_area = per_subarray_peripherals * org.total_subarrays() as f64;
        // 20 % routing/controller overhead, the NVSim default assumption.
        let area_m2 = (cell_area + peripheral_area) * 1.2;

        // --- Global interconnect ----------------------------------------
        let htree = htree_branch(tech, area_m2);
        let htree_energy_per_bit = htree.switch_energy_j(tech.vdd_v);
        let htree_latency = htree.elmore_delay_s();

        Ok(ArrayCharacterization {
            read_latency_s: read_latency,
            and_latency_s: and_latency,
            write_latency_s: write_latency,
            read_energy_per_bit_j: read_energy_per_bit,
            and_energy_per_bit_j: and_energy_per_bit,
            write_energy_per_bit_j: write_energy_per_bit,
            row_activation_energy_j: row_activation,
            htree_energy_per_bit_j: htree_energy_per_bit,
            htree_latency_s: htree_latency,
            leakage_w: tech.subarray_leakage_w * org.total_subarrays() as f64,
            area_mm2: area_m2 * 1e6,
            organization: *org,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_mtj::MtjParams;

    fn characterization() -> ArrayCharacterization {
        let cell = MtjCell::characterize(&MtjParams::table_i()).unwrap();
        ArrayModel::characterize(&cell, &ArrayOrganization::tcim_16mb()).unwrap()
    }

    #[test]
    fn read_class_latency_sub_5ns() {
        let a = characterization();
        assert!(
            a.read_latency_s > 0.1e-9 && a.read_latency_s < 5e-9,
            "{:e}",
            a.read_latency_s
        );
        assert_eq!(a.read_latency_s, a.and_latency_s);
    }

    #[test]
    fn write_slower_than_read() {
        let a = characterization();
        assert!(a.write_latency_s > a.read_latency_s);
        // STT-MRAM write sits in the ns–tens-of-ns regime.
        assert!(a.write_latency_s < 50e-9);
    }

    #[test]
    fn write_energy_dominates_read_energy() {
        let a = characterization();
        // The paper's data-reuse strategy matters precisely because WRITE
        // is far more expensive than the in-place AND.
        assert!(
            a.write_energy_per_bit_j > 10.0 * a.and_energy_per_bit_j,
            "write {:e} vs and {:e}",
            a.write_energy_per_bit_j,
            a.and_energy_per_bit_j
        );
    }

    #[test]
    fn and_costs_more_than_read_per_bit() {
        let a = characterization();
        assert!(a.and_energy_per_bit_j > a.read_energy_per_bit_j);
    }

    #[test]
    fn slice_energy_accounting() {
        let a = characterization();
        let and64 = a.and_slice_energy_j(64);
        let expected = 2.0 * a.row_activation_energy_j + 64.0 * a.and_energy_per_bit_j;
        assert!((and64 - expected).abs() < 1e-21);
        assert!(a.write_slice_energy_j(64) > and64);
    }

    #[test]
    fn area_magnitude_for_16mb() {
        let a = characterization();
        // 134 Mbit of 40 F² cells at 45 nm lands near 11 mm²; with
        // peripherals the die should stay within 10–40 mm².
        assert!(a.area_mm2 > 10.0 && a.area_mm2 < 40.0, "{}", a.area_mm2);
    }

    #[test]
    fn leakage_scales_with_subarrays() {
        let cell = MtjCell::characterize(&MtjParams::table_i()).unwrap();
        let big = ArrayModel::characterize(&cell, &ArrayOrganization::tcim_16mb()).unwrap();
        let small =
            ArrayModel::characterize(&cell, &ArrayOrganization::small_256kb()).unwrap();
        assert!(big.leakage_w > small.leakage_w);
    }

    #[test]
    fn invalid_organization_is_rejected() {
        let cell = MtjCell::characterize(&MtjParams::table_i()).unwrap();
        let mut org = ArrayOrganization::tcim_16mb();
        org.mats_per_bank = 0;
        assert!(ArrayModel::characterize(&cell, &org).is_err());
    }
}
