//! Error type for the array model.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NvsimError>;

/// Errors raised by organization validation and characterization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NvsimError {
    /// An organization field was zero or inconsistent.
    InvalidOrganization {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The device-level inputs were unusable (propagated from `tcim-mtj`).
    Device(tcim_mtj::MtjError),
}

impl fmt::Display for NvsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvsimError::InvalidOrganization { reason } => {
                write!(f, "invalid array organization: {reason}")
            }
            NvsimError::Device(e) => write!(f, "device model error: {e}"),
        }
    }
}

impl Error for NvsimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NvsimError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tcim_mtj::MtjError> for NvsimError {
    fn from(e: tcim_mtj::MtjError) -> Self {
        NvsimError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NvsimError::InvalidOrganization { reason: "zero rows".into() };
        assert!(e.to_string().contains("zero rows"));
        assert!(e.source().is_none());
        let e =
            NvsimError::from(tcim_mtj::MtjError::SolverDidNotConverge { simulated_s: 1.0 });
        assert!(e.source().is_some());
    }
}
