//! Elmore-delay RC wire models for word lines, bit lines and the H-tree.

use crate::tech::TechNode;

/// A distributed RC wire of a given length in the node's local metal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    /// Wire length (m).
    pub length_m: f64,
    /// Total resistance (Ω).
    pub resistance_ohm: f64,
    /// Total capacitance (F).
    pub capacitance_f: f64,
}

impl Wire {
    /// A local-metal wire of `length_m` in `tech`.
    pub fn local(tech: &TechNode, length_m: f64) -> Self {
        Wire {
            length_m,
            resistance_ohm: tech.wire_res_per_m * length_m,
            capacitance_f: tech.wire_cap_per_m * length_m,
        }
    }

    /// Elmore delay of the distributed line: `0.38·R·C`.
    pub fn elmore_delay_s(&self) -> f64 {
        0.38 * self.resistance_ohm * self.capacitance_f
    }

    /// Switching energy for a full-swing transition: `C·V²`.
    pub fn switch_energy_j(&self, vdd: f64) -> f64 {
        self.capacitance_f * vdd * vdd
    }
}

/// Word line spanning `cols` cells: wire plus one gate load per cell.
pub fn wordline(tech: &TechNode, cols: usize) -> Wire {
    let length = cols as f64 * tech.cell_pitch_m();
    let mut w = Wire::local(tech, length);
    // Access-transistor gate load ≈ 0.1 fF per cell at 45 nm.
    w.capacitance_f += cols as f64 * 0.1e-15;
    w
}

/// Bit line spanning `rows` cells: wire plus one junction load per cell.
pub fn bitline(tech: &TechNode, rows: usize) -> Wire {
    let length = rows as f64 * tech.cell_pitch_m();
    let mut w = Wire::local(tech, length);
    // Drain-junction load ≈ 0.05 fF per cell.
    w.capacitance_f += rows as f64 * 0.05e-15;
    w
}

/// Global H-tree branch reaching a chip of `area_m2`: half the die edge.
pub fn htree_branch(tech: &TechNode, area_m2: f64) -> Wire {
    Wire::local(tech, area_m2.sqrt() / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_scales_quadratically_with_length() {
        let t = TechNode::freepdk45();
        let w1 = Wire::local(&t, 100e-6);
        let w2 = Wire::local(&t, 200e-6);
        let ratio = w2.elmore_delay_s() / w1.elmore_delay_s();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wordline_delay_magnitude() {
        // 512-column word line: wire delay well under the SA latency.
        let t = TechNode::freepdk45();
        let wl = wordline(&t, 512);
        assert!(wl.elmore_delay_s() < 100e-12, "{:e}", wl.elmore_delay_s());
        assert!(wl.elmore_delay_s() > 0.1e-12);
    }

    #[test]
    fn bitline_has_smaller_per_cell_load_than_wordline() {
        let t = TechNode::freepdk45();
        assert!(bitline(&t, 512).capacitance_f < wordline(&t, 512).capacitance_f);
    }

    #[test]
    fn energy_is_cv2() {
        let t = TechNode::freepdk45();
        let w = Wire::local(&t, 1e-3);
        assert!((w.switch_energy_j(1.0) - w.capacitance_f).abs() < 1e-30);
    }

    #[test]
    fn htree_scales_with_die_edge() {
        let t = TechNode::freepdk45();
        let small = htree_branch(&t, 1e-6);
        let large = htree_branch(&t, 4e-6);
        assert!((large.length_m / small.length_m - 2.0).abs() < 1e-9);
    }
}
