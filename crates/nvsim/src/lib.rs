//! NVSim-style analytical model of the computational STT-MRAM array.
//!
//! The paper "integrate\[s\] the parameters in the open-source NVSim
//! simulator and obtain\[s\] the memory array performance" (§V-A). This
//! crate plays that role: it takes the device-level characterization from
//! [`tcim_mtj`] and an array organization, and produces the latency,
//! energy and area of every operation the architecture simulator needs —
//! READ, the 2-row AND, and slice WRITE.
//!
//! The model follows the structure of NVSim (Dong et al., TCAD 2012):
//!
//! * [`tech`] — 45 nm technology constants (FreePDK45 regime): wire RC,
//!   FO4 delay, sense-amplifier and driver costs.
//! * [`organization`] — the bank → mat → sub-array hierarchy of Fig. 4
//!   with capacity accounting.
//! * [`wires`] — Elmore-delay RC estimates for word lines, bit lines and
//!   the global H-tree.
//! * [`peripheral`] — row decoders, column muxes, sense amplifiers,
//!   write drivers, modelled as logic chains over tech constants.
//! * [`mod@array`] — the roll-up: [`array::ArrayCharacterization`] per
//!   operation, consumed by `tcim-arch`.
//!
//! # Example
//!
//! ```
//! use tcim_mtj::{MtjCell, MtjParams};
//! use tcim_nvsim::organization::ArrayOrganization;
//! use tcim_nvsim::array::ArrayModel;
//!
//! let cell = MtjCell::characterize(&MtjParams::table_i())?;
//! // The paper's 16 MB computational array.
//! let org = ArrayOrganization::tcim_16mb();
//! let array = ArrayModel::characterize(&cell, &org)?;
//! assert!(array.and_latency_s < 5e-9);   // AND is a read-class operation
//! // Writing a 64-bit slice costs far more than ANDing one — the reason
//! // the paper's data-reuse strategy pays off.
//! assert!(array.write_slice_energy_j(64) > 10.0 * array.and_slice_energy_j(64));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
mod error;
pub mod organization;
pub mod peripheral;
pub mod tech;
pub mod wires;

pub use array::{ArrayCharacterization, ArrayModel};
pub use error::{NvsimError, Result};
pub use organization::ArrayOrganization;
