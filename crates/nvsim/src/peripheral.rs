//! Peripheral circuit models: decoders, sense amplifiers, write drivers.
//!
//! Each peripheral is modelled as a logic chain over [`TechNode`]
//! constants, the same level of abstraction NVSim uses (gate-chain delay
//! plus wire loads), rather than transistor-level SPICE.

use crate::tech::TechNode;

/// Latency/energy/area summary of one peripheral block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockCost {
    /// Propagation latency (s).
    pub latency_s: f64,
    /// Energy per activation (J).
    pub energy_j: f64,
    /// Silicon area (m²).
    pub area_m2: f64,
}

/// Row decoder for `rows` word lines: a NAND pre-decode tree of
/// `log2(rows)` stages plus the word-line driver.
///
/// The multi-row-activation variant of the paper shares this structure —
/// enabling two word lines uses two driver strobes but one decode.
pub fn row_decoder(tech: &TechNode, rows: usize) -> BlockCost {
    let stages = (rows.max(2) as f64).log2().ceil();
    // Each decode stage ≈ 2 FO4; the final driver adds 3 FO4 of buffering.
    let latency = (2.0 * stages + 3.0) * tech.fo4_delay_s;
    // Roughly `rows` gates toggle across the pre-decode fan-out.
    let energy = (rows as f64).sqrt() * 4.0 * tech.gate_energy_j;
    let area = rows as f64 * 20.0 * tech.feature_size_m * tech.feature_size_m;
    BlockCost { latency_s: latency, energy_j: energy, area_m2: area }
}

/// Column multiplexer selecting `cols_selected` of `cols_total` bit lines.
pub fn column_mux(tech: &TechNode, cols_total: usize, cols_selected: usize) -> BlockCost {
    let fan = (cols_total.max(1) / cols_selected.max(1)).max(1);
    let stages = (fan as f64).log2().max(1.0);
    BlockCost {
        latency_s: stages * tech.fo4_delay_s,
        energy_j: cols_selected as f64 * tech.gate_energy_j,
        area_m2: cols_total as f64 * 8.0 * tech.feature_size_m * tech.feature_size_m,
    }
}

/// Bank of `count` current-mode sense amplifiers (one per selected bit
/// line). The same SAs implement READ and AND; only the reference branch
/// differs (Fig. 4), which costs area but no extra latency.
pub fn sense_amps(tech: &TechNode, count: usize, extra_references: usize) -> BlockCost {
    BlockCost {
        latency_s: tech.sense_amp_latency_s,
        energy_j: count as f64 * tech.sense_amp_energy_j,
        // Each extra reference (e.g. the AND reference) replicates the
        // reference branch, ~40 % of the SA area.
        area_m2: count as f64 * tech.sense_amp_area_m2 * (1.0 + 0.4 * extra_references as f64),
    }
}

/// Write drivers for `count` bit lines. Driver latency is buffering only —
/// the cell switching time dominates and is accounted separately.
pub fn write_drivers(tech: &TechNode, count: usize) -> BlockCost {
    BlockCost {
        latency_s: 4.0 * tech.fo4_delay_s,
        energy_j: count as f64 * 2.0 * tech.gate_energy_j,
        area_m2: count as f64 * 30.0 * tech.feature_size_m * tech.feature_size_m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_latency_grows_logarithmically() {
        let t = TechNode::freepdk45();
        let d256 = row_decoder(&t, 256);
        let d512 = row_decoder(&t, 512);
        let d1024 = row_decoder(&t, 1024);
        let step1 = d512.latency_s - d256.latency_s;
        let step2 = d1024.latency_s - d512.latency_s;
        assert!(step1 > 0.0);
        assert!((step1 - step2).abs() < 1e-15, "log steps should be equal");
    }

    #[test]
    fn decoder_magnitude_sub_nanosecond() {
        let t = TechNode::freepdk45();
        let d = row_decoder(&t, 512);
        assert!(d.latency_s > 50e-12 && d.latency_s < 1e-9, "{:e}", d.latency_s);
    }

    #[test]
    fn sense_amp_energy_scales_with_count() {
        let t = TechNode::freepdk45();
        let one = sense_amps(&t, 64, 1);
        let two = sense_amps(&t, 128, 1);
        assert!((two.energy_j / one.energy_j - 2.0).abs() < 1e-9);
        assert_eq!(one.latency_s, two.latency_s);
    }

    #[test]
    fn extra_reference_costs_area_not_time() {
        let t = TechNode::freepdk45();
        let read_only = sense_amps(&t, 64, 0);
        let with_and = sense_amps(&t, 64, 1);
        assert!(with_and.area_m2 > read_only.area_m2);
        assert_eq!(with_and.latency_s, read_only.latency_s);
        assert_eq!(with_and.energy_j, read_only.energy_j);
    }

    #[test]
    fn mux_with_no_reduction_is_single_stage() {
        let t = TechNode::freepdk45();
        let m = column_mux(&t, 512, 512);
        assert!((m.latency_s - t.fo4_delay_s).abs() < 1e-18);
    }

    #[test]
    fn write_driver_latency_is_small() {
        let t = TechNode::freepdk45();
        assert!(write_drivers(&t, 64).latency_s < 100e-12);
    }
}
