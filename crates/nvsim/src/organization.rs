//! The bank → mat → sub-array hierarchy of the computational chip (Fig. 4).

use crate::error::{NvsimError, Result};

/// Organization of the computational STT-MRAM chip.
///
/// Fig. 4 of the paper: "each chip consists of multiple Banks … Each Bank
/// is comprised of multiple computational memory sub-arrays, which are
/// connected to a global row decoder and a shared global row buffer."
/// Mats group sub-arrays that share local drivers.
///
/// # Example
///
/// ```
/// use tcim_nvsim::ArrayOrganization;
///
/// let org = ArrayOrganization::tcim_16mb();
/// assert_eq!(org.total_bytes(), 16 * 1024 * 1024);
/// org.validate()?;
/// # Ok::<(), tcim_nvsim::NvsimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayOrganization {
    /// Rows per sub-array (word lines).
    pub rows_per_subarray: usize,
    /// Columns per sub-array (bit lines).
    pub cols_per_subarray: usize,
    /// Sub-arrays per mat.
    pub subarrays_per_mat: usize,
    /// Mats per bank.
    pub mats_per_bank: usize,
    /// Banks per chip.
    pub banks: usize,
}

impl ArrayOrganization {
    /// The 16 MB configuration of the paper's evaluation (§V-A):
    /// 512×512 sub-arrays, 8 per mat, 16 mats per bank, 4 banks.
    pub fn tcim_16mb() -> Self {
        ArrayOrganization {
            rows_per_subarray: 512,
            cols_per_subarray: 512,
            subarrays_per_mat: 8,
            mats_per_bank: 16,
            banks: 4,
        }
    }

    /// A small single-bank configuration for unit tests and examples.
    pub fn small_256kb() -> Self {
        ArrayOrganization {
            rows_per_subarray: 256,
            cols_per_subarray: 256,
            subarrays_per_mat: 4,
            mats_per_bank: 8,
            banks: 1,
        }
    }

    /// Checks all fields are non-zero and the geometry is addressable.
    ///
    /// # Errors
    ///
    /// Returns [`NvsimError::InvalidOrganization`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("rows_per_subarray", self.rows_per_subarray),
            ("cols_per_subarray", self.cols_per_subarray),
            ("subarrays_per_mat", self.subarrays_per_mat),
            ("mats_per_bank", self.mats_per_bank),
            ("banks", self.banks),
        ];
        for (name, value) in fields {
            if value == 0 {
                return Err(NvsimError::InvalidOrganization {
                    reason: format!("{name} must be non-zero"),
                });
            }
        }
        if !self.rows_per_subarray.is_power_of_two()
            || !self.cols_per_subarray.is_power_of_two()
        {
            return Err(NvsimError::InvalidOrganization {
                reason: "sub-array dimensions must be powers of two for the decoder model"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Bits per sub-array.
    pub fn bits_per_subarray(&self) -> u64 {
        self.rows_per_subarray as u64 * self.cols_per_subarray as u64
    }

    /// Total sub-arrays on the chip.
    pub fn total_subarrays(&self) -> u64 {
        (self.subarrays_per_mat * self.mats_per_bank * self.banks) as u64
    }

    /// Total capacity in bits.
    pub fn total_bits(&self) -> u64 {
        self.bits_per_subarray() * self.total_subarrays()
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits() / 8
    }

    /// Sub-arrays that can operate concurrently. The paper's architecture
    /// activates one sub-array per mat at a time (shared local buffer), so
    /// the concurrency is `mats_per_bank × banks`.
    pub fn parallel_subarrays(&self) -> u64 {
        (self.mats_per_bank * self.banks) as u64
    }

    /// How many slices of `slice_bits` one sub-array row holds.
    pub fn slices_per_row(&self, slice_bits: u32) -> usize {
        self.cols_per_subarray / slice_bits as usize
    }
}

impl Default for ArrayOrganization {
    fn default() -> Self {
        ArrayOrganization::tcim_16mb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcim_16mb_capacity() {
        let org = ArrayOrganization::tcim_16mb();
        org.validate().unwrap();
        // 512·512 bits = 32 KiB per sub-array; 8·16·4 = 512 sub-arrays.
        assert_eq!(org.bits_per_subarray(), 262_144);
        assert_eq!(org.total_subarrays(), 512);
        assert_eq!(org.total_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn small_config_capacity() {
        let org = ArrayOrganization::small_256kb();
        org.validate().unwrap();
        assert_eq!(org.total_bytes(), 256 * 1024);
    }

    #[test]
    fn parallelism_counts_mats_and_banks() {
        let org = ArrayOrganization::tcim_16mb();
        assert_eq!(org.parallel_subarrays(), 64);
    }

    #[test]
    fn slices_per_row() {
        let org = ArrayOrganization::tcim_16mb();
        assert_eq!(org.slices_per_row(64), 8);
        assert_eq!(org.slices_per_row(512), 1);
    }

    #[test]
    fn rejects_zero_and_non_power_of_two() {
        let mut org = ArrayOrganization::tcim_16mb();
        org.banks = 0;
        assert!(org.validate().is_err());
        let mut org = ArrayOrganization::tcim_16mb();
        org.rows_per_subarray = 500;
        assert!(org.validate().is_err());
    }
}
