//! 45 nm technology constants (FreePDK45 regime).
//!
//! The paper characterizes its circuits "with \[the\] 45nm FreePDK CMOS
//! library" (§V-A). NVSim ships per-node constant tables for exactly this
//! purpose; the values below are the commonly used 45 nm bulk-CMOS
//! numbers (ITRS/FreePDK45-derived, as tabulated in NVSim and CACTI):
//! metal-2/3 wire RC for local routing, FO4 delay for logic chains, and
//! sense-amplifier/driver costs.

/// Technology parameters for one process node.
///
/// All values are plain data; swap the struct to retarget the model.
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Feature size (m).
    pub feature_size_m: f64,
    /// Supply voltage (V).
    pub vdd_v: f64,
    /// FO4 inverter delay (s) — the unit of logic-chain timing.
    pub fo4_delay_s: f64,
    /// Switching energy of a minimum inverter (J) — the unit of
    /// logic-chain energy.
    pub gate_energy_j: f64,
    /// Local wire resistance per metre (Ω/m), intermediate metal.
    pub wire_res_per_m: f64,
    /// Local wire capacitance per metre (F/m), intermediate metal.
    pub wire_cap_per_m: f64,
    /// Latency of one current-mode sense amplifier (s).
    pub sense_amp_latency_s: f64,
    /// Energy of one sense operation (J).
    pub sense_amp_energy_j: f64,
    /// Area of one sense amplifier (m²).
    pub sense_amp_area_m2: f64,
    /// Leakage power of the peripheral logic per sub-array (W).
    pub subarray_leakage_w: f64,
    /// MRAM cell size in F² (1T1R with a drive transistor sized for the
    /// switching current).
    pub cell_area_f2: f64,
}

impl TechNode {
    /// The 45 nm node used throughout the paper's evaluation.
    pub fn freepdk45() -> Self {
        TechNode {
            feature_size_m: 45e-9,
            vdd_v: 1.0,
            // FO4 ≈ 15 ps at 45 nm bulk.
            fo4_delay_s: 15e-12,
            // ~0.1 fJ per minimum-gate toggle at 1 V.
            gate_energy_j: 0.1e-15,
            // Intermediate metal: ~3.8 Ω/µm and ~0.2 fF/µm.
            wire_res_per_m: 3.8e6,
            wire_cap_per_m: 0.2e-9,
            // Current-mode SA: ~200 ps, ~2 fJ, ~60 F² per column pair.
            sense_amp_latency_s: 200e-12,
            sense_amp_energy_j: 2e-15,
            sense_amp_area_m2: 60.0 * 45e-9 * 45e-9,
            subarray_leakage_w: 5e-6,
            // 1T1R STT-MRAM cell with write-current-capable access
            // transistor: ~40 F².
            cell_area_f2: 40.0,
        }
    }

    /// Cell area in m².
    pub fn cell_area_m2(&self) -> f64 {
        self.cell_area_f2 * self.feature_size_m * self.feature_size_m
    }

    /// Approximate cell pitch (m) assuming a square cell.
    pub fn cell_pitch_m(&self) -> f64 {
        self.cell_area_m2().sqrt()
    }
}

impl Default for TechNode {
    fn default() -> Self {
        TechNode::freepdk45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freepdk45_magnitudes() {
        let t = TechNode::freepdk45();
        assert_eq!(t.feature_size_m, 45e-9);
        // Cell pitch ≈ √40 · 45 nm ≈ 285 nm.
        assert!((t.cell_pitch_m() - 284.6e-9).abs() < 1e-9);
    }

    #[test]
    fn default_is_freepdk45() {
        assert_eq!(TechNode::default(), TechNode::freepdk45());
    }
}
