//! Streaming accounting: per-update deltas, per-batch outcomes and the
//! cumulative [`StreamReport`] — the dynamic-workload counterpart of
//! `tcim-core`'s per-execution `CountReport`.

use std::fmt;
use std::time::Duration;

use crate::error::StreamError;
use crate::update::Update;

/// The outcome of one accepted update: its triangle delta and the PIM
/// kernel work that computed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// The update (normalized endpoint order).
    pub update: Update,
    /// Signed triangle delta: `+|N(u) ∩ N(v)|` for insertions,
    /// `−|N(u) ∩ N(v)|` for deletions.
    pub triangles: i64,
    /// Valid slice pairs the delta kernel processed (the AND + BitCount
    /// passes of this update).
    pub slice_pairs: u64,
    /// The intra-batch round the kernel executed in.
    pub round: usize,
}

/// An update rejected by batch validation, with the reason. The batch
/// continues past rejections — they consume no kernel work and leave
/// the graph untouched.
#[derive(Debug)]
pub struct Rejected {
    /// The offending update as submitted.
    pub update: Update,
    /// Why it was rejected.
    pub error: StreamError,
}

/// The outcome of applying one [`UpdateBatch`](crate::UpdateBatch).
#[derive(Debug)]
pub struct BatchReport {
    /// Per accepted update, in submission order.
    pub deltas: Vec<Delta>,
    /// Updates rejected by validation, in submission order.
    pub rejected: Vec<Rejected>,
    /// Endpoint-disjoint rounds the batch was partitioned into.
    pub rounds: usize,
    /// Modelled kernel time of the batch (s): the sum over rounds of
    /// each round's critical path across arrays.
    pub modelled_kernel_s: f64,
    /// Whether the drift policy folded the state after this batch.
    pub folded: bool,
    /// The maintained triangle count after the batch.
    pub triangles: u64,
}

impl BatchReport {
    /// Number of updates actually applied.
    pub fn applied(&self) -> usize {
        self.deltas.len()
    }

    /// The batch's net triangle delta.
    pub fn net_delta(&self) -> i64 {
        self.deltas.iter().map(|d| d.triangles).sum()
    }
}

/// Cumulative accounting over the life of a
/// [`DynamicGraph`](crate::DynamicGraph): deltas applied, kernel
/// invocations, rebuilds and amortized per-update cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamReport {
    /// Edge insertions applied.
    pub inserts: u64,
    /// Edge deletions applied.
    pub deletes: u64,
    /// Updates rejected by validation.
    pub rejected: u64,
    /// Batches applied.
    pub batches: u64,
    /// Endpoint-disjoint rounds executed across all batches.
    pub rounds: u64,
    /// Delta-kernel invocations (one AND + BitCount kernel per applied
    /// update).
    pub kernel_invocations: u64,
    /// Valid slice pairs processed across all delta kernels.
    pub slice_pairs: u64,
    /// Folds back into a fresh prepared artifact (re-slices).
    pub rebuilds: u64,
    /// Modelled kernel time across all batches (s).
    pub modelled_kernel_s: f64,
    /// Host wall-clock time spent applying updates (validation, kernels,
    /// row patching).
    pub host_update_time: Duration,
    /// Host wall-clock time spent folding (snapshot + re-prepare).
    pub host_rebuild_time: Duration,
}

impl StreamReport {
    /// Total updates applied (insertions + deletions).
    pub fn updates_applied(&self) -> u64 {
        self.inserts + self.deletes
    }

    /// Modelled kernel time amortized per applied update (s), `0.0`
    /// before any update was applied.
    pub fn amortized_kernel_s(&self) -> f64 {
        let n = self.updates_applied();
        if n == 0 {
            0.0
        } else {
            self.modelled_kernel_s / n as f64
        }
    }
}

impl fmt::Display for StreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} updates (+{} −{}, {} rejected) in {} batches/{} rounds: \
             {} kernels over {} slice pairs, {} rebuilds, \
             {:.3e} s modelled ({:.3e} s/update)",
            self.updates_applied(),
            self.inserts,
            self.deletes,
            self.rejected,
            self.batches,
            self.rounds,
            self.kernel_invocations,
            self.slice_pairs,
            self.rebuilds,
            self.modelled_kernel_s,
            self.amortized_kernel_s(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_divides_by_applied_updates() {
        let mut r = StreamReport { inserts: 3, deletes: 1, ..StreamReport::default() };
        r.modelled_kernel_s = 8.0;
        assert_eq!(r.updates_applied(), 4);
        assert_eq!(r.amortized_kernel_s(), 2.0);
        assert_eq!(StreamReport::default().amortized_kernel_s(), 0.0);
    }

    #[test]
    fn display_mentions_the_key_counters() {
        let r = StreamReport {
            inserts: 2,
            deletes: 1,
            rejected: 1,
            batches: 1,
            rounds: 2,
            kernel_invocations: 3,
            slice_pairs: 9,
            rebuilds: 1,
            ..StreamReport::default()
        };
        let text = r.to_string();
        assert!(text.contains("3 updates"));
        assert!(text.contains("1 rejected"));
        assert!(text.contains("1 rebuilds"));
    }
}
