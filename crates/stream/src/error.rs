//! Error type of the dynamic-graph subsystem.

use std::error::Error;
use std::fmt;

use tcim_core::CoreError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, StreamError>;

/// Errors raised while applying edge updates to a [`DynamicGraph`]
/// (validation failures of individual updates) or while folding the
/// dynamic state back into a prepared artifact.
///
/// [`DynamicGraph`]: crate::DynamicGraph
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError {
    /// An update endpoint lies outside the graph's vertex universe.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The vertex count of the dynamic graph.
        count: usize,
    },
    /// An update had both endpoints on the same vertex.
    SelfLoop {
        /// The vertex looping onto itself.
        vertex: u32,
    },
    /// An insertion of an edge that already exists (possibly inserted
    /// earlier in the same batch).
    DuplicateEdge {
        /// Smaller endpoint.
        u: u32,
        /// Larger endpoint.
        v: u32,
    },
    /// A deletion of an edge that does not exist (never inserted, or
    /// already deleted earlier in the same batch).
    UnknownEdge {
        /// Smaller endpoint.
        u: u32,
        /// Larger endpoint.
        v: u32,
    },
    /// A fold-time verification recount disagreed with the incrementally
    /// maintained triangle count. This indicates a bug in the delta
    /// kernel or in the update bookkeeping, never expected in practice.
    CountDrift {
        /// The incrementally maintained count.
        maintained: u64,
        /// The from-scratch recount of the folded artifact.
        recount: u64,
    },
    /// A fold-time verification recount disagreed with an incrementally
    /// maintained *per-vertex* count. Like [`StreamError::CountDrift`],
    /// this indicates an attribution bug, never expected in practice.
    PerVertexDrift {
        /// The first vertex whose counts disagree.
        vertex: u32,
        /// The incrementally maintained participation count.
        maintained: u64,
        /// The from-scratch recount.
        recount: u64,
    },
    /// A pipeline or backend failure from the underlying `tcim-core`
    /// machinery (engine characterization, fold-time execution).
    Core(CoreError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::VertexOutOfBounds { vertex, count } => {
                write!(f, "update endpoint {vertex} out of bounds for {count} vertices")
            }
            StreamError::SelfLoop { vertex } => {
                write!(f, "self-loop update on vertex {vertex}")
            }
            StreamError::DuplicateEdge { u, v } => {
                write!(f, "insert of existing edge {{{u}, {v}}}")
            }
            StreamError::UnknownEdge { u, v } => {
                write!(f, "delete of unknown edge {{{u}, {v}}}")
            }
            StreamError::CountDrift { maintained, recount } => write!(
                f,
                "incremental count {maintained} disagrees with fold-time recount {recount}"
            ),
            StreamError::PerVertexDrift { vertex, maintained, recount } => write!(
                f,
                "incremental per-vertex count {maintained} of vertex {vertex} disagrees \
                 with fold-time recount {recount}"
            ),
            StreamError::Core(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Core(e)
    }
}

impl From<tcim_sched::SchedError> for StreamError {
    fn from(e: tcim_sched::SchedError) -> Self {
        StreamError::Core(CoreError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = StreamError::UnknownEdge { u: 3, v: 9 };
        assert_eq!(e.to_string(), "delete of unknown edge {3, 9}");
        let e = StreamError::CountDrift { maintained: 5, recount: 4 };
        assert!(e.to_string().contains("recount 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }
}
