//! Edge updates and batches: the write traffic of the streaming
//! workload.

use std::fmt;

/// One edge update against the dynamic graph. Endpoints are unordered —
/// `Insert(3, 7)` and `Insert(7, 3)` describe the same undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert the undirected edge `{u, v}`.
    Insert(u32, u32),
    /// Delete the undirected edge `{u, v}`.
    Delete(u32, u32),
}

impl Update {
    /// The update's endpoints as given.
    pub fn endpoints(self) -> (u32, u32) {
        match self {
            Update::Insert(u, v) | Update::Delete(u, v) => (u, v),
        }
    }

    /// The same update with endpoints in `(min, max)` order.
    pub fn normalized(self) -> Update {
        match self {
            Update::Insert(u, v) => Update::Insert(u.min(v), u.max(v)),
            Update::Delete(u, v) => Update::Delete(u.min(v), u.max(v)),
        }
    }

    /// `true` for insertions.
    pub fn is_insert(self) -> bool {
        matches!(self, Update::Insert(..))
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Insert(u, v) => write!(f, "+{{{u}, {v}}}"),
            Update::Delete(u, v) => write!(f, "-{{{u}, {v}}}"),
        }
    }
}

/// An ordered batch of edge updates, applied atomically per batch by
/// [`DynamicGraph::apply_batch`](crate::DynamicGraph::apply_batch).
///
/// Order matters: a batch may insert and later delete the same edge, and
/// validation honours the sequential semantics even though independent
/// updates execute their delta kernels in parallel rounds.
///
/// # Example
///
/// ```
/// use tcim_stream::{Update, UpdateBatch};
///
/// let mut batch = UpdateBatch::new();
/// batch.insert(0, 5).delete(2, 3).insert(4, 1);
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.iter().next(), Some(&Update::Insert(0, 5)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<Update>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Appends an insertion of `{u, v}`.
    pub fn insert(&mut self, u: u32, v: u32) -> &mut Self {
        self.updates.push(Update::Insert(u, v));
        self
    }

    /// Appends a deletion of `{u, v}`.
    pub fn delete(&mut self, u: u32, v: u32) -> &mut Self {
        self.updates.push(Update::Delete(u, v));
        self
    }

    /// Appends an arbitrary update.
    pub fn push(&mut self, update: Update) -> &mut Self {
        self.updates.push(update);
        self
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Update> {
        self.updates.iter()
    }
}

impl From<Vec<Update>> for UpdateBatch {
    fn from(updates: Vec<Update>) -> Self {
        UpdateBatch { updates }
    }
}

impl FromIterator<Update> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = Update>>(iter: I) -> Self {
        UpdateBatch { updates: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a UpdateBatch {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_orders_endpoints() {
        assert_eq!(Update::Insert(7, 3).normalized(), Update::Insert(3, 7));
        assert_eq!(Update::Delete(1, 2).normalized(), Update::Delete(1, 2));
        assert!(Update::Insert(0, 1).is_insert());
        assert!(!Update::Delete(0, 1).is_insert());
    }

    #[test]
    fn batch_builder_preserves_order() {
        let mut b = UpdateBatch::new();
        b.insert(0, 1).delete(0, 1).push(Update::Insert(2, 3));
        let seq: Vec<Update> = b.iter().copied().collect();
        assert_eq!(
            seq,
            vec![Update::Insert(0, 1), Update::Delete(0, 1), Update::Insert(2, 3)]
        );
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn display_is_signed() {
        assert_eq!(Update::Insert(1, 2).to_string(), "+{1, 2}");
        assert_eq!(Update::Delete(4, 0).to_string(), "-{4, 0}");
    }
}
