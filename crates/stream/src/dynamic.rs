//! The dynamic graph: live triangle-count maintenance under edge
//! insertions and deletions, without re-slicing the whole graph.
//!
//! # Dataflow
//!
//! A [`DynamicGraph`] owns mutable adjacency plus one mutable sliced
//! bit-row per vertex holding its **full** neighbourhood `N(v)` (not the
//! oriented DAG rows a one-shot count uses). Under that representation
//! the triangle delta of an edge update `{u, v}` is *exactly one* TCIM
//! kernel invocation — `BitCount(AND(N(u), N(v)))` over valid slice
//! pairs (PAPER.md §IV, Alg. 1):
//!
//! * insert `{u, v}`: every common neighbour closes a new triangle, so
//!   `ΔTC = +|N(u) ∩ N(v)|`;
//! * delete `{u, v}`: every common neighbour loses one, `ΔTC = −|N(u) ∩
//!   N(v)|` (the edge itself never appears in the intersection, so the
//!   kernel is the same either side of the mutation).
//!
//! Batches are partitioned into endpoint-disjoint *rounds*: updates in
//! one round touch pairwise-disjoint vertex sets, so their kernels read
//! disjoint neighbourhoods and execute concurrently — fanned across
//! arrays via `tcim-sched`'s [delta jobs](tcim_sched::delta) — while
//! conflicting updates serialize into later rounds, preserving exact
//! sequential semantics.
//!
//! Mutations patch the sliced rows in place
//! ([`SlicedRow::set_bit`]/[`clear_bit`]); nothing is re-sliced
//! until the [`DriftPolicy`] decides the epoch snapshot has decayed,
//! at which point [`DynamicGraph::fold`] rebuilds one fresh
//! [`PreparedGraph`] through the pipeline's `PreparedCache`.
//!
//! Rows live under one [`RowEncoding`] resolved once at construction
//! from the configured [`EncodingPolicy`](tcim_bitmatrix::EncodingPolicy)
//! and the initial density: sparse rows keep their skip-empty kernel
//! walk across in-place patches, so a sparse stream never pays for
//! slices its neighbourhoods don't populate.
//!
//! [`clear_bit`]: SlicedRow::clear_bit

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use tcim_arch::SliceCostModel;
use tcim_bitmatrix::{PairStats, RowEncoding, SliceSize, SlicedRow};
use tcim_core::{Backend, PreparedGraph, Query, TcimConfig, TcimPipeline};
use tcim_graph::CsrGraph;
use tcim_sched::{parallel_map_indexed, plan_deltas, DeltaJob, SchedPolicy};

use crate::drift::{DriftMeasure, DriftPolicy};
use crate::error::{Result, StreamError};
use crate::report::{BatchReport, Delta, Rejected, StreamReport};
use crate::update::{Update, UpdateBatch};

/// Configuration of a [`DynamicGraph`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The underlying pipeline configuration (orientation and PIM
    /// parameters used for prepared snapshots and the initial count).
    pub tcim: TcimConfig,
    /// When to fold dynamic state into a fresh prepared artifact.
    pub drift: DriftPolicy,
    /// Arrays/placement/host threads used to fan large rounds of delta
    /// kernels out via `tcim-sched`.
    pub sched: SchedPolicy,
    /// Minimum round size that engages the multi-array fan-out; smaller
    /// rounds run serially on one array.
    pub fanout_threshold: usize,
    /// Recount the folded artifact and fail on disagreement with the
    /// maintained count (a self-check; disabled by default).
    pub verify_on_fold: bool,
    /// Backend used for the initial count and fold-time verification.
    pub count_backend: Backend,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            tcim: TcimConfig::default(),
            drift: DriftPolicy::default(),
            sched: SchedPolicy::with_arrays(4),
            fanout_threshold: 8,
            verify_on_fold: false,
            count_backend: Backend::CpuMerge,
        }
    }
}

/// An immutable, epoch-pinned view of a dynamic graph as of its last
/// fold: the prepared artifact together with the maintained counts
/// captured at the instant the fold ran, when the artifact and the
/// live state agree exactly.
///
/// Snapshots are what serving layers hand to concurrent readers: a
/// reader holding one answers every query shape against a consistent
/// epoch without touching (or being blocked by) the mutable dynamic
/// state, while writers keep applying batches and publish the *next*
/// epoch by swapping in a fresh snapshot. Cloning is cheap (two `Arc`
/// bumps), so publication is a pointer swap, never a copy.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// The fold epoch this snapshot pins (0 = the construction state).
    pub epoch: u64,
    /// The epoch's prepared artifact — queryable on any backend like
    /// any static graph.
    pub prepared: Arc<PreparedGraph>,
    /// The exact triangle count at the pinned epoch.
    pub triangles: u64,
    /// The exact per-vertex participation counts at the pinned epoch.
    pub per_vertex: Arc<Vec<u64>>,
    /// Undirected edge count at the pinned epoch.
    pub edges: usize,
}

/// One member of an endpoint-disjoint execution round.
#[derive(Debug, Clone, Copy)]
struct RoundMember {
    /// Position in the accepted-update sequence (submission order).
    idx: usize,
    u: u32,
    v: u32,
    insert: bool,
}

/// A graph under write traffic: mutable adjacency, mutable sliced
/// bit-rows, an incrementally maintained triangle count and an epoch
/// snapshot folded through the [`TcimPipeline`] on drift.
///
/// # Example
///
/// ```
/// use tcim_graph::generators::classic;
/// use tcim_stream::{DynamicGraph, StreamConfig, UpdateBatch};
///
/// // Fig. 2 of the paper: 2 triangles.
/// let mut dg = DynamicGraph::new(&classic::fig2_example(), StreamConfig::default())?;
/// assert_eq!(dg.triangles(), 2);
///
/// // Closing {0, 3} creates two new triangles — one delta kernel.
/// let mut batch = UpdateBatch::new();
/// batch.insert(0, 3);
/// let outcome = dg.apply_batch(&batch)?;
/// assert_eq!(outcome.net_delta(), 2);
/// assert_eq!(dg.triangles(), 4);
/// # Ok::<(), tcim_stream::StreamError>(())
/// ```
#[derive(Debug)]
pub struct DynamicGraph {
    config: StreamConfig,
    pipeline: TcimPipeline,
    costs: SliceCostModel,
    slice_size: SliceSize,
    /// Sorted full neighbour lists (both directions of every edge).
    adjacency: Vec<Vec<u32>>,
    /// `rows[v]` is `N(v)` in compressed sliced form, all under
    /// `encoding`.
    rows: Vec<SlicedRow>,
    /// The row encoding resolved at construction (fixed for the
    /// graph's lifetime; folds re-resolve inside the pipeline).
    encoding: RowEncoding,
    triangles: u64,
    /// Triangles each vertex participates in, maintained incrementally
    /// alongside the total (sums to `3 × triangles`).
    per_vertex: Vec<u64>,
    edges: usize,
    touched: Vec<bool>,
    touched_rows: usize,
    valid_slices: u64,
    valid_at_fold: u64,
    updates_since_fold: u64,
    epoch: u64,
    prepared: Arc<PreparedGraph>,
    /// The epoch snapshot captured at construction / the last fold,
    /// handed out (cheaply, by clone) to snapshot-isolated readers.
    published: EpochSnapshot,
    report: StreamReport,
}

impl DynamicGraph {
    /// Builds the dynamic state from an initial graph: prepares (and
    /// caches) the epoch-0 artifact, obtains the initial count with
    /// `config.count_backend`, and slices every full neighbourhood row.
    ///
    /// # Errors
    ///
    /// Propagates engine characterization and backend failures.
    pub fn new(g: &CsrGraph, config: StreamConfig) -> Result<Self> {
        let pipeline = TcimPipeline::new(&config.tcim)?;
        let prepared = pipeline.prepare(g);
        // One attributed execution seeds both maintained quantities:
        // the per-vertex query's report carries the total alongside.
        let local =
            pipeline.query(&prepared, &config.count_backend, &Query::PerVertexTriangles)?;
        let per_vertex = local
            .value
            .per_vertex()
            .expect("a per-vertex query always returns a per-vertex value")
            .to_vec();
        let n = g.vertex_count();
        let slice_size = config.tcim.pim.slice_size;
        let rows: Vec<SlicedRow> = g
            .vertices()
            .map(|v| {
                SlicedRow::from_sorted_indices(
                    n,
                    g.neighbors(v).iter().map(|&x| x as usize),
                    slice_size,
                    RowEncoding::Dense,
                )
            })
            .collect();
        // Resolve the encoding from the *full*-neighbourhood density
        // (roughly twice the oriented artifact's) so streaming skips
        // exactly where its own kernels would find empty slices.
        let total: usize = rows.iter().map(SlicedRow::total_slices).sum();
        let valid: usize = rows.iter().map(SlicedRow::valid_slice_count).sum();
        let fraction = if total == 0 { 1.0 } else { valid as f64 / total as f64 };
        let encoding = config.tcim.encoding.resolve(fraction);
        let rows: Vec<SlicedRow> = if encoding == RowEncoding::Sparse {
            rows.iter().map(|r| r.reencoded(RowEncoding::Sparse)).collect()
        } else {
            rows
        };
        let valid_slices = rows.iter().map(|r| r.valid_slice_count() as u64).sum();
        let costs = pipeline.engine().cost_model();
        let published = EpochSnapshot {
            epoch: 0,
            prepared: Arc::clone(&prepared),
            triangles: local.triangles,
            per_vertex: Arc::new(per_vertex.clone()),
            edges: g.edge_count(),
        };
        Ok(DynamicGraph {
            config,
            costs,
            slice_size,
            adjacency: g.vertices().map(|v| g.neighbors(v).to_vec()).collect(),
            rows,
            encoding,
            triangles: local.triangles,
            per_vertex,
            edges: g.edge_count(),
            touched: vec![false; n],
            touched_rows: 0,
            valid_slices,
            valid_at_fold: valid_slices,
            updates_since_fold: 0,
            epoch: 0,
            prepared,
            published,
            pipeline,
            report: StreamReport::default(),
        })
    }

    /// Number of vertices (fixed at construction).
    pub fn vertex_count(&self) -> usize {
        self.rows.len()
    }

    /// Current number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The incrementally maintained exact triangle count.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// The incrementally maintained exact per-vertex participation
    /// counts (sums to `3 ×` [`DynamicGraph::triangles`]): every delta
    /// kernel's surviving bits are attributed to the update's endpoints
    /// and witnesses as the batch applies, so per-vertex queries on a
    /// live graph never recount.
    pub fn per_vertex(&self) -> &[u64] {
        &self.per_vertex
    }

    /// Triangles vertex `v` currently participates in.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of bounds.
    pub fn triangles_of(&self, v: u32) -> u64 {
        self.per_vertex[v as usize]
    }

    /// Live per-edge triangle support: for every current edge `{u, v}`
    /// (ascending), `|N(u) ∩ N(v)|` computed with one delta kernel over
    /// the live sliced rows — `O(m)` kernels, no re-slicing. Returns
    /// the per-edge entries together with the valid slice pairs the
    /// kernels processed and the pairs the sparse filter proved zero
    /// and skipped (provenance for serving layers).
    pub fn edge_support(&self) -> (Vec<(u32, u32, u64)>, u64, u64) {
        let mut support = Vec::with_capacity(self.edges);
        let mut slice_pairs = 0u64;
        let mut skipped = 0u64;
        for (u, list) in self.adjacency.iter().enumerate() {
            let u = u as u32;
            for &v in list.iter().filter(|&&v| v > u) {
                let (common, stats) = kernel(&self.rows[u as usize], &self.rows[v as usize]);
                slice_pairs += stats.visited;
                skipped += stats.skipped;
                support.push((u, v, common));
            }
        }
        (support, slice_pairs, skipped)
    }

    /// The live k-truss decomposition: trussness for every current
    /// edge plus the maximal `k`-truss membership, answered directly
    /// over the maintained adjacency with the same peeling engine the
    /// prepared path runs — no fold, no re-slice. Returns the
    /// [`QueryValue::KTruss`] value and the motif kernel accounting.
    ///
    /// [`QueryValue::KTruss`]: tcim_core::QueryValue::KTruss
    pub fn trussness(&self, k: u32) -> (tcim_core::QueryValue, tcim_core::KernelStats) {
        tcim_core::ktruss_value_from_adjacency(
            &self.adjacency,
            self.slice_size,
            self.encoding,
            k,
        )
    }

    /// The live 4-clique census: total count plus per-vertex
    /// memberships, answered by chained ANDs over full-neighbourhood
    /// rows built from the maintained adjacency. Returns the
    /// [`QueryValue::FourCliques`] value and the motif kernel
    /// accounting.
    ///
    /// [`QueryValue::FourCliques`]: tcim_core::QueryValue::FourCliques
    pub fn four_cliques(&self) -> (tcim_core::QueryValue, tcim_core::KernelStats) {
        tcim_core::four_cliques_from_adjacency(&self.adjacency, self.slice_size, self.encoding)
    }

    /// The slice size `|S|` every dynamic row is compressed with.
    pub fn slice_size(&self) -> SliceSize {
        self.slice_size
    }

    /// The row encoding every dynamic row lives under, resolved once at
    /// construction from the configured policy and initial density.
    pub fn encoding(&self) -> RowEncoding {
        self.encoding
    }

    /// Compressed bytes across all live rows under the active encoding
    /// (provenance for serving layers; tracks in-place patches).
    pub fn compressed_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.compressed_bytes() as u64).sum()
    }

    /// Current valid slices across all dynamic rows (the live `NVS`).
    pub fn valid_slices(&self) -> u64 {
        self.valid_slices
    }

    /// Whether the undirected edge `{u, v}` currently exists.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of bounds.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adjacency[u as usize].binary_search(&v).is_ok()
    }

    /// The sliced neighbourhood row `N(v)`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of bounds.
    pub fn row(&self, v: u32) -> &SlicedRow {
        &self.rows[v as usize]
    }

    /// The sorted live neighbour list of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of bounds.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    /// The fold epoch: how many times the state was folded back into a
    /// fresh prepared artifact.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The latest epoch artifact (from construction or the last fold).
    /// May lag the live state by up to one drift threshold.
    pub fn prepared(&self) -> &Arc<PreparedGraph> {
        &self.prepared
    }

    /// The latest published [`EpochSnapshot`] (from construction or the
    /// last fold), cheap to clone and safe to read long after the live
    /// state has moved on. Like [`DynamicGraph::prepared`], it may lag
    /// the live state by up to one drift threshold; use
    /// [`DynamicGraph::publish`] to force it current.
    pub fn epoch_snapshot(&self) -> EpochSnapshot {
        self.published.clone()
    }

    /// Publishes the live state as the next epoch: folds (exactly as
    /// the drift policy would) when any update has been applied since
    /// the last fold, then returns the now-current snapshot. A no-op
    /// returning the existing snapshot when nothing changed.
    ///
    /// # Errors
    ///
    /// Propagates fold failures.
    pub fn publish(&mut self) -> Result<EpochSnapshot> {
        if self.updates_since_fold > 0 {
            self.fold()?;
        }
        Ok(self.published.clone())
    }

    /// The pipeline folding snapshots (exposes the `PreparedCache`).
    pub fn pipeline(&self) -> &TcimPipeline {
        &self.pipeline
    }

    /// The configuration this dynamic graph runs under.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Cumulative streaming accounting.
    pub fn report(&self) -> &StreamReport {
        &self.report
    }

    /// The current drift of the dynamic state relative to its last fold.
    pub fn drift(&self) -> DriftMeasure {
        DriftMeasure {
            touched_rows: self.touched_rows,
            total_rows: self.rows.len(),
            valid_slices: self.valid_slices,
            valid_slices_at_fold: self.valid_at_fold,
            updates_since_fold: self.updates_since_fold,
        }
    }

    /// Materialises the live state as an immutable [`CsrGraph`].
    pub fn snapshot(&self) -> CsrGraph {
        let edges: Vec<(u32, u32)> = self
            .adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, list)| {
                let u = u as u32;
                list.iter().copied().filter(move |&v| v > u).map(move |v| (u, v))
            })
            .collect();
        CsrGraph::from_edges(self.rows.len(), edges)
            .expect("dynamic adjacency is always in bounds")
    }

    /// Applies a single update; a one-update [`DynamicGraph::apply_batch`].
    ///
    /// # Errors
    ///
    /// Returns the validation error when the update is rejected, and
    /// propagates fold failures.
    pub fn apply(&mut self, update: Update) -> Result<Delta> {
        let mut batch = UpdateBatch::new();
        batch.push(update);
        let mut outcome = self.apply_batch(&batch)?;
        if let Some(r) = outcome.rejected.pop() {
            return Err(r.error);
        }
        Ok(outcome
            .deltas
            .pop()
            .expect("a one-update batch yields exactly one delta or rejection"))
    }

    /// Applies a batch of updates: validates sequentially, partitions
    /// accepted updates into endpoint-disjoint rounds, computes every
    /// round's triangle deltas with the PIM AND + BitCount kernel
    /// (fanned across arrays for large rounds), patches the sliced rows
    /// in place, and folds the state through the pipeline when the
    /// drift policy trips.
    ///
    /// Rejected updates are reported in the outcome and leave the graph
    /// untouched; the rest of the batch still applies.
    ///
    /// # Errors
    ///
    /// Propagates fold failures ([`StreamError::Core`],
    /// [`StreamError::CountDrift`]); validation failures are *not*
    /// errors of the batch.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<BatchReport> {
        let update_span = tcim_telemetry::span("update");
        let start = Instant::now();
        let (round_members, rejected) = self.validate(batch);
        let rounds = round_members.len();
        let accepted: usize = round_members.iter().map(Vec::len).sum();

        let mut deltas: Vec<Option<Delta>> = vec![None; accepted];
        let mut modelled_kernel_s = 0.0f64;
        for (round, members) in round_members.iter().enumerate() {
            let delta_span = tcim_telemetry::span("delta");
            let (results, round_critical_s) = self.run_round(members)?;
            drop(delta_span);
            modelled_kernel_s += round_critical_s;
            for (m, (common, pairs, witnesses)) in members.iter().zip(&results) {
                let signed = if m.insert { *common as i64 } else { -(*common as i64) };
                self.patch(m.u, m.v, m.insert);
                self.triangles = self
                    .triangles
                    .checked_add_signed(signed)
                    .expect("deletion deltas never exceed the maintained count");
                // Attribute the delta: the endpoints gain/lose every
                // closed triangle, each witness exactly one.
                let attribute = |counts: &mut [u64], vertex: u32, delta: u64| {
                    let slot = &mut counts[vertex as usize];
                    *slot = if m.insert {
                        *slot + delta
                    } else {
                        slot.checked_sub(delta)
                            .expect("deletions never detach more triangles than maintained")
                    };
                };
                attribute(&mut self.per_vertex, m.u, *common);
                attribute(&mut self.per_vertex, m.v, *common);
                for &w in witnesses {
                    attribute(&mut self.per_vertex, w, 1);
                }
                let update =
                    if m.insert { Update::Insert(m.u, m.v) } else { Update::Delete(m.u, m.v) };
                deltas[m.idx] =
                    Some(Delta { update, triangles: signed, slice_pairs: *pairs, round });
            }
        }
        let deltas: Vec<Delta> = deltas
            .into_iter()
            .map(|d| d.expect("every accepted update executed in exactly one round"))
            .collect();

        // Cumulative accounting (before the fold, which bills its own
        // host time separately).
        self.report.batches += 1;
        self.report.rounds += rounds as u64;
        self.report.kernel_invocations += deltas.len() as u64;
        self.report.slice_pairs += deltas.iter().map(|d| d.slice_pairs).sum::<u64>();
        self.report.inserts += deltas.iter().filter(|d| d.update.is_insert()).count() as u64;
        self.report.deletes += deltas.iter().filter(|d| !d.update.is_insert()).count() as u64;
        self.report.rejected += rejected.len() as u64;
        self.report.modelled_kernel_s += modelled_kernel_s;
        self.report.host_update_time += start.elapsed();

        let folded = self.config.drift.should_fold(&self.drift());
        if folded {
            self.fold()?;
        }
        drop(update_span);
        Ok(BatchReport {
            deltas,
            rejected,
            rounds,
            modelled_kernel_s,
            folded,
            triangles: self.triangles,
        })
    }

    /// Folds the live state into a fresh prepared artifact through the
    /// pipeline (one re-slice, landing in the `PreparedCache`), resets
    /// the drift measure and advances the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::CountDrift`] when `verify_on_fold` is set
    /// and the recount disagrees, and propagates backend failures.
    pub fn fold(&mut self) -> Result<Arc<PreparedGraph>> {
        let _fold_span = tcim_telemetry::span("fold");
        let start = Instant::now();
        let snapshot = self.snapshot();
        let prepared = self.pipeline.prepare(&snapshot);
        self.prepared = Arc::clone(&prepared);
        self.epoch += 1;
        // At fold time the artifact and the maintained quantities agree
        // exactly, so this is the one moment an epoch snapshot can be
        // captured consistently.
        self.published = EpochSnapshot {
            epoch: self.epoch,
            prepared: Arc::clone(&prepared),
            triangles: self.triangles,
            per_vertex: Arc::new(self.per_vertex.clone()),
            edges: self.edges,
        };
        self.report.rebuilds += 1;
        self.touched.fill(false);
        self.touched_rows = 0;
        self.valid_at_fold = self.valid_slices;
        self.updates_since_fold = 0;
        if self.config.verify_on_fold {
            // One attributed recount checks both maintained quantities.
            let local = self.pipeline.query(
                &prepared,
                &self.config.count_backend,
                &Query::PerVertexTriangles,
            )?;
            if local.triangles != self.triangles {
                return Err(StreamError::CountDrift {
                    maintained: self.triangles,
                    recount: local.triangles,
                });
            }
            let recounted = local
                .value
                .per_vertex()
                .expect("a per-vertex query always returns a per-vertex value");
            for (v, (&maintained, &recount)) in
                self.per_vertex.iter().zip(recounted).enumerate()
            {
                if maintained != recount {
                    return Err(StreamError::PerVertexDrift {
                        vertex: v as u32,
                        maintained,
                        recount,
                    });
                }
            }
        }
        self.report.host_rebuild_time += start.elapsed();
        Ok(prepared)
    }

    /// Sequential validation with in-batch awareness: each update sees
    /// the graph as left by every earlier accepted update. Accepted
    /// updates are assigned the earliest round after every earlier
    /// update sharing an endpoint, grouped by round (outer index) so
    /// batch execution never re-scans the accepted list.
    fn validate(&self, batch: &UpdateBatch) -> (Vec<Vec<RoundMember>>, Vec<Rejected>) {
        let n = self.rows.len();
        let mut overlay: HashMap<(u32, u32), bool> = HashMap::new();
        let mut last_round: HashMap<u32, usize> = HashMap::new();
        let mut accepted = 0usize;
        let mut rounds: Vec<Vec<RoundMember>> = Vec::new();
        let mut rejected = Vec::new();
        for &update in batch {
            let (a, b) = update.endpoints();
            let error = if a as usize >= n {
                Some(StreamError::VertexOutOfBounds { vertex: a, count: n })
            } else if b as usize >= n {
                Some(StreamError::VertexOutOfBounds { vertex: b, count: n })
            } else if a == b {
                Some(StreamError::SelfLoop { vertex: a })
            } else {
                let key = (a.min(b), a.max(b));
                let exists =
                    overlay.get(&key).copied().unwrap_or_else(|| self.has_edge(key.0, key.1));
                match (update.is_insert(), exists) {
                    (true, true) => Some(StreamError::DuplicateEdge { u: key.0, v: key.1 }),
                    (false, false) => Some(StreamError::UnknownEdge { u: key.0, v: key.1 }),
                    (insert, _) => {
                        overlay.insert(key, insert);
                        None
                    }
                }
            };
            if let Some(error) = error {
                rejected.push(Rejected { update, error });
                continue;
            }
            let (u, v) = (a.min(b), a.max(b));
            let round =
                [u, v].iter().filter_map(|x| last_round.get(x)).max().map_or(0, |&r| r + 1);
            last_round.insert(u, round);
            last_round.insert(v, round);
            if rounds.len() <= round {
                rounds.push(Vec::new());
            }
            rounds[round].push(RoundMember {
                idx: accepted,
                u,
                v,
                insert: update.is_insert(),
            });
            accepted += 1;
        }
        (rounds, rejected)
    }

    /// Executes one endpoint-disjoint round of delta kernels. Returns
    /// `(common-neighbour count, slice pairs, witnesses)` per member
    /// (member order) and the round's modelled critical path; the
    /// witnesses are the common neighbours read back out of the AND
    /// result, which per-vertex maintenance attributes.
    #[allow(clippy::type_complexity)]
    fn run_round(&self, members: &[RoundMember]) -> Result<(Vec<(u64, u64, Vec<u32>)>, f64)> {
        if members.is_empty() {
            return Ok((Vec::new(), 0.0));
        }
        let fan_out = members.len() >= self.config.fanout_threshold.max(1)
            && self.config.sched.arrays > 1;
        let plan_policy = if fan_out {
            self.config.sched.clone()
        } else {
            SchedPolicy { arrays: 1, host_threads: Some(1), ..self.config.sched.clone() }
        };
        // Price each kernel for placement: both operands are written
        // once; the pair estimate is the upper bound min(valid, valid).
        let jobs: Vec<DeltaJob> = members
            .iter()
            .enumerate()
            .map(|(k, m)| {
                let va = self.rows[m.u as usize].valid_slice_count() as u64;
                let vb = self.rows[m.v as usize].valid_slice_count() as u64;
                DeltaJob::price(k, va, vb, va.min(vb), &self.costs)
            })
            .collect();
        let plan = plan_deltas(&jobs, &plan_policy)?;

        let slice_bits = self.slice_size.bits();
        let results = if fan_out {
            let rows = &self.rows;
            let per_array = plan.per_array_jobs();
            let outs: Vec<Vec<(usize, (u64, u64, Vec<u32>))>> = parallel_map_indexed(
                plan.arrays,
                self.config.sched.resolved_host_threads(),
                |a| {
                    per_array[a]
                        .iter()
                        .map(|&k| {
                            let m = &members[k];
                            (
                                k,
                                kernel_attributed(
                                    &rows[m.u as usize],
                                    &rows[m.v as usize],
                                    slice_bits,
                                ),
                            )
                        })
                        .collect()
                },
            );
            let mut results = vec![(0u64, 0u64, Vec::new()); members.len()];
            for out in outs {
                for (k, r) in out {
                    results[k] = r;
                }
            }
            results
        } else {
            members
                .iter()
                .map(|m| {
                    kernel_attributed(
                        &self.rows[m.u as usize],
                        &self.rows[m.v as usize],
                        slice_bits,
                    )
                })
                .collect()
        };
        Ok((results, plan.critical_path_s()))
    }

    /// Patches one validated update into rows, adjacency and the drift
    /// bookkeeping.
    fn patch(&mut self, u: u32, v: u32, insert: bool) {
        for (a, b) in [(u, v), (v, u)] {
            let row = &mut self.rows[a as usize];
            let before = row.valid_slice_count() as u64;
            let changed =
                if insert { row.set_bit(b as usize) } else { row.clear_bit(b as usize) }
                    .expect("validated endpoints are in bounds");
            debug_assert!(changed, "validation guarantees the mutation is effective");
            let after = row.valid_slice_count() as u64;
            // The total always includes this row's `before` slices, so
            // the subtraction cannot underflow.
            self.valid_slices = self.valid_slices - before + after;
            let list = &mut self.adjacency[a as usize];
            match (list.binary_search(&b), insert) {
                (Err(pos), true) => list.insert(pos, b),
                (Ok(pos), false) => {
                    list.remove(pos);
                }
                _ => debug_assert!(false, "validation guarantees adjacency consistency"),
            }
            if !self.touched[a as usize] {
                self.touched[a as usize] = true;
                self.touched_rows += 1;
            }
        }
        if insert {
            self.edges += 1;
        } else {
            self.edges -= 1;
        }
        self.updates_since_fold += 1;
    }
}

/// The TCIM delta kernel: `popcount(a AND b)` over matching valid slice
/// pairs, returning the count and the pair accounting. Sparse rows skip
/// pairs their byte masks prove disjoint before the AND.
fn kernel(a: &SlicedRow, b: &SlicedRow) -> (u64, PairStats) {
    let mut common = 0u64;
    let stats = a
        .for_each_matching(b, |_, anded| {
            for &w in anded {
                common += u64::from(w.count_ones());
            }
        })
        .expect("dynamic rows share one universe and encoding");
    (common, stats)
}

/// As [`kernel`], additionally reading the surviving bits back out of
/// each non-zero AND result: the returned witnesses are the common
/// neighbours themselves (ascending), which per-vertex maintenance
/// attributes — the streaming twin of
/// `tcim_arch::runtime::run_attributed`'s readout.
fn kernel_attributed(a: &SlicedRow, b: &SlicedRow, slice_bits: u32) -> (u64, u64, Vec<u32>) {
    let mut witnesses = Vec::new();
    let mut pairs = 0u64;
    a.for_each_matching(b, |k, anded| {
        pairs += 1;
        tcim_bitmatrix::popcount::visit_set_bits(anded.iter().copied(), |offset| {
            witnesses.push(k * slice_bits + offset);
        });
    })
    .expect("dynamic rows share one universe and encoding");
    (witnesses.len() as u64, pairs, witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::generators::classic;

    fn fig2_dynamic(config: StreamConfig) -> DynamicGraph {
        DynamicGraph::new(&classic::fig2_example(), config).unwrap()
    }

    fn no_fold() -> StreamConfig {
        StreamConfig { drift: DriftPolicy::never(), ..StreamConfig::default() }
    }

    #[test]
    fn single_updates_track_fig2_deltas() {
        let mut dg = fig2_dynamic(no_fold());
        assert_eq!(dg.triangles(), 2);
        assert_eq!(dg.edge_count(), 5);

        // {0, 3}: N(0) = {1, 2}, N(3) = {1, 2} → +2.
        let d = dg.apply(Update::Insert(3, 0)).unwrap();
        assert_eq!(d.triangles, 2);
        assert_eq!(d.update, Update::Insert(0, 3), "endpoints are normalized");
        assert_eq!(dg.triangles(), 4);
        assert!(dg.has_edge(0, 3) && dg.has_edge(3, 0));

        // Deleting it reverses the delta exactly.
        let d = dg.apply(Update::Delete(0, 3)).unwrap();
        assert_eq!(d.triangles, -2);
        assert_eq!(dg.triangles(), 2);
        assert_eq!(dg.edge_count(), 5);

        // Removing a triangle edge.
        let d = dg.apply(Update::Delete(1, 2)).unwrap();
        assert_eq!(d.triangles, -2);
        assert_eq!(dg.triangles(), 0);
    }

    #[test]
    fn per_vertex_counts_track_updates_exactly() {
        let mut dg = fig2_dynamic(no_fold());
        // Fig. 2: triangles 0-1-2 and 1-2-3.
        assert_eq!(dg.per_vertex(), &[1, 2, 2, 1]);
        dg.apply(Update::Insert(0, 3)).unwrap();
        // {0, 3} closes 0-1-3 and 0-2-3.
        assert_eq!(dg.per_vertex(), &[3, 3, 3, 3]);
        assert_eq!(dg.triangles_of(0), 3);
        // Deleting {1, 2} destroys 0-1-2 and 1-2-3; 0-1-3 and 0-2-3
        // survive.
        dg.apply(Update::Delete(1, 2)).unwrap();
        assert_eq!(dg.per_vertex(), &[2, 1, 1, 2]);
        let total: u64 = dg.per_vertex().iter().sum();
        assert_eq!(total, 3 * dg.triangles());
    }

    #[test]
    fn live_edge_support_matches_definition() {
        let mut dg = fig2_dynamic(no_fold());
        dg.apply(Update::Insert(0, 3)).unwrap();
        // K4: every edge supports two triangles.
        let (support, slice_pairs, skipped) = dg.edge_support();
        assert_eq!(skipped, 0, "a dense fig2 graph skips nothing");
        assert_eq!(support.len(), dg.edge_count());
        assert!(slice_pairs >= support.len() as u64, "every kernel touched a pair");
        assert!(support.iter().all(|&(_, _, s)| s == 2));
        assert!(support.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        // Every triangle supports three edges.
        let total: u64 = support.iter().map(|&(_, _, s)| s).sum();
        assert_eq!(total, 3 * dg.triangles());
    }

    #[test]
    fn invalid_updates_are_rejected_without_state_change() {
        let mut dg = fig2_dynamic(no_fold());
        assert!(matches!(
            dg.apply(Update::Insert(0, 1)),
            Err(StreamError::DuplicateEdge { u: 0, v: 1 })
        ));
        assert!(matches!(
            dg.apply(Update::Delete(0, 3)),
            Err(StreamError::UnknownEdge { u: 0, v: 3 })
        ));
        assert!(matches!(dg.apply(Update::Insert(2, 2)), Err(StreamError::SelfLoop { .. })));
        assert!(matches!(
            dg.apply(Update::Delete(0, 9)),
            Err(StreamError::VertexOutOfBounds { vertex: 9, count: 4 })
        ));
        assert_eq!(dg.triangles(), 2);
        assert_eq!(dg.edge_count(), 5);
        assert_eq!(dg.report().rejected, 4);
        assert_eq!(dg.report().kernel_invocations, 0);
    }

    #[test]
    fn batch_validation_sees_earlier_batch_members() {
        let mut dg = fig2_dynamic(no_fold());
        let mut batch = UpdateBatch::new();
        batch
            .insert(0, 3) // ok → +2
            .insert(0, 3) // duplicate of the in-batch insert
            .delete(0, 3) // ok (inserted above) → −2
            .delete(0, 3); // unknown again
        let outcome = dg.apply_batch(&batch).unwrap();
        assert_eq!(outcome.applied(), 2);
        assert_eq!(outcome.rejected.len(), 2);
        assert_eq!(outcome.net_delta(), 0);
        // Conflicting updates serialize into distinct rounds.
        assert_eq!(outcome.rounds, 2);
        assert_eq!(dg.triangles(), 2);
        assert!(!dg.has_edge(0, 3));
        assert!(matches!(outcome.rejected[0].error, StreamError::DuplicateEdge { .. }));
        assert!(matches!(outcome.rejected[1].error, StreamError::UnknownEdge { .. }));
    }

    #[test]
    fn independent_updates_share_a_round() {
        // Wheel on 8 rim vertices: plenty of disjoint pairs.
        let g = classic::wheel(9);
        let mut dg = DynamicGraph::new(&g, no_fold()).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(1, 3).insert(2, 4).insert(5, 7);
        let outcome = dg.apply_batch(&batch).unwrap();
        assert_eq!(outcome.rounds, 1, "endpoint-disjoint updates run in one round");
        assert_eq!(outcome.applied(), 3);
    }

    #[test]
    fn parallel_fanout_agrees_with_serial_execution() {
        let g = classic::wheel(40);
        let updates: Vec<Update> =
            (1..20)
                .map(|v| {
                    if v % 3 == 0 {
                        Update::Delete(v, v + 1)
                    } else {
                        Update::Insert(v, v + 19)
                    }
                })
                .collect();
        let serial_cfg = StreamConfig {
            drift: DriftPolicy::never(),
            fanout_threshold: usize::MAX,
            ..StreamConfig::default()
        };
        let fan_cfg = StreamConfig {
            drift: DriftPolicy::never(),
            fanout_threshold: 1,
            sched: SchedPolicy::with_arrays(4),
            ..StreamConfig::default()
        };
        let mut serial = DynamicGraph::new(&g, serial_cfg).unwrap();
        let mut fanned = DynamicGraph::new(&g, fan_cfg).unwrap();
        let batch: UpdateBatch = updates.into_iter().collect();
        let a = serial.apply_batch(&batch).unwrap();
        let b = fanned.apply_batch(&batch).unwrap();
        assert_eq!(a.deltas.len(), b.deltas.len());
        for (x, y) in a.deltas.iter().zip(&b.deltas) {
            assert_eq!(x, y);
        }
        assert_eq!(serial.triangles(), fanned.triangles());
        assert_eq!(serial.snapshot(), fanned.snapshot());
    }

    #[test]
    fn drift_policy_folds_and_advances_the_epoch() {
        let config = StreamConfig {
            drift: DriftPolicy {
                max_touched_fraction: None,
                max_valid_slice_drift: None,
                max_updates: Some(2),
            },
            verify_on_fold: true,
            ..StreamConfig::default()
        };
        let mut dg = fig2_dynamic(config);
        assert_eq!(dg.epoch(), 0);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 3).delete(1, 2).delete(0, 1);
        let outcome = dg.apply_batch(&batch).unwrap();
        assert!(outcome.folded);
        assert_eq!(dg.epoch(), 1);
        assert_eq!(dg.report().rebuilds, 1);
        assert_eq!(dg.drift().updates_since_fold, 0);
        assert_eq!(dg.drift().touched_rows, 0);
        // The folded artifact reflects the live state.
        assert_eq!(dg.prepared().key().edges, dg.edge_count());
    }

    #[test]
    fn epoch_snapshots_pin_fold_time_state() {
        let mut dg = fig2_dynamic(no_fold());
        let epoch0 = dg.epoch_snapshot();
        assert_eq!(epoch0.epoch, 0);
        assert_eq!(epoch0.triangles, 2);
        assert_eq!(epoch0.per_vertex.as_slice(), &[1, 2, 2, 1]);
        assert_eq!(epoch0.edges, 5);

        // Updates move the live state but never the pinned snapshot.
        dg.apply(Update::Insert(0, 3)).unwrap();
        assert_eq!(dg.triangles(), 4);
        assert_eq!(epoch0.triangles, 2);
        assert_eq!(dg.epoch_snapshot().epoch, 0, "no fold ⇒ no new epoch");
        assert_eq!(dg.epoch_snapshot().triangles, 2, "published state lags until a fold");

        // Publishing folds and captures the live state exactly.
        let epoch1 = dg.publish().unwrap();
        assert_eq!(epoch1.epoch, 1);
        assert_eq!(epoch1.triangles, 4);
        assert_eq!(epoch1.per_vertex.as_slice(), &[3, 3, 3, 3]);
        assert_eq!(epoch1.edges, 6);
        assert_eq!(epoch1.prepared.key().edges, 6);
        // The old snapshot is still intact for readers pinned to it.
        assert_eq!(epoch0.triangles, 2);

        // Publishing with nothing applied is a no-op.
        let again = dg.publish().unwrap();
        assert_eq!(again.epoch, 1);
        assert_eq!(dg.report().rebuilds, 1);
    }

    #[test]
    fn drift_folds_refresh_the_published_snapshot() {
        let config = StreamConfig {
            drift: DriftPolicy {
                max_touched_fraction: None,
                max_valid_slice_drift: None,
                max_updates: Some(1),
            },
            ..StreamConfig::default()
        };
        let mut dg = fig2_dynamic(config);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 3).delete(1, 2);
        let outcome = dg.apply_batch(&batch).unwrap();
        assert!(outcome.folded);
        let snap = dg.epoch_snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.triangles, dg.triangles());
    }

    #[test]
    fn snapshot_round_trips_through_the_pipeline() {
        let mut dg = fig2_dynamic(no_fold());
        dg.apply(Update::Insert(0, 3)).unwrap();
        let snapshot = dg.snapshot();
        assert_eq!(snapshot.edge_count(), 6);
        let fresh = DynamicGraph::new(&snapshot, no_fold()).unwrap();
        assert_eq!(fresh.triangles(), dg.triangles());
    }

    #[test]
    fn report_accumulates_and_prices_work() {
        let mut dg = fig2_dynamic(no_fold());
        let mut batch = UpdateBatch::new();
        batch.insert(0, 3).delete(2, 3);
        dg.apply_batch(&batch).unwrap();
        let r = dg.report();
        assert_eq!(r.inserts, 1);
        assert_eq!(r.deletes, 1);
        assert_eq!(r.kernel_invocations, 2);
        assert!(r.slice_pairs >= 2, "every kernel touched at least one pair");
        assert!(r.modelled_kernel_s > 0.0);
        assert!(r.amortized_kernel_s() > 0.0);
        assert_eq!(r.rebuilds, 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut dg = fig2_dynamic(no_fold());
        let outcome = dg.apply_batch(&UpdateBatch::new()).unwrap();
        assert_eq!(outcome.applied(), 0);
        assert_eq!(outcome.rounds, 0);
        assert!(!outcome.folded);
        assert_eq!(outcome.triangles, 2);
        assert_eq!(dg.report().batches, 1);
    }

    #[test]
    fn valid_slice_bookkeeping_matches_recomputation() {
        let g = classic::wheel(20);
        let mut dg = DynamicGraph::new(&g, no_fold()).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 10).insert(3, 11).delete(1, 2).delete(5, 6);
        dg.apply_batch(&batch).unwrap();
        let recomputed: u64 =
            (0..dg.vertex_count() as u32).map(|v| dg.row(v).valid_slice_count() as u64).sum();
        assert_eq!(dg.valid_slices(), recomputed);
    }
}
