//! Dynamic-graph subsystem for the TCIM reproduction: live triangle
//! counting under streams of edge insertions and deletions.
//!
//! Everything below this crate is *static*: `tcim-core`'s pipeline
//! prepares a graph once and re-executes it, so a single edge change
//! forces a full re-orient + re-slice. Real serving workloads are write
//! streams — and the per-update triangle delta `|N(u) ∩ N(v)|` is
//! exactly one row-AND + BitCount, the TCIM kernel itself (PAPER.md
//! §IV, Alg. 1). This crate opens that workload:
//!
//! * [`DynamicGraph`] — mutable adjacency plus mutable sliced bit-rows
//!   (patched in place via `tcim-bitmatrix`'s `set_bit`/`clear_bit`),
//!   maintaining an exact triangle count under updates.
//! * [`UpdateBatch`]/[`Delta`] — batched updates partitioned into
//!   endpoint-disjoint rounds whose delta kernels are priced through
//!   the engine's `SliceCostModel` and fanned across arrays via
//!   `tcim-sched`'s [delta jobs](tcim_sched::delta).
//! * [`DriftPolicy`] — epoch/snapshot integration with `tcim-core`:
//!   when enough rows were touched (or the valid-slice population
//!   decayed), the live state folds back into a fresh `PreparedGraph`
//!   through `TcimPipeline`/`PreparedCache`.
//! * [`StreamReport`] — deltas applied, kernel invocations, rebuilds
//!   and amortized per-update cost, alongside the static pipeline's
//!   `CountReport`.
//!
//! # Example
//!
//! ```
//! use tcim_graph::generators::classic;
//! use tcim_stream::{DynamicGraph, StreamConfig, UpdateBatch};
//!
//! let mut dg = DynamicGraph::new(&classic::wheel(12), StreamConfig::default())?;
//! assert_eq!(dg.triangles(), 11);
//!
//! // A chord across the rim closes one extra triangle per shared hub.
//! let mut batch = UpdateBatch::new();
//! batch.insert(1, 3).delete(2, 3);
//! let outcome = dg.apply_batch(&batch)?;
//! assert_eq!(dg.triangles(), (11 + outcome.net_delta() as u64));
//! println!("{}", dg.report());
//! # Ok::<(), tcim_stream::StreamError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod drift;
mod dynamic;
mod error;
mod report;
mod update;

pub use drift::{DriftMeasure, DriftPolicy};
pub use dynamic::{DynamicGraph, EpochSnapshot, StreamConfig};
pub use error::{Result, StreamError};
pub use report::{BatchReport, Delta, Rejected, StreamReport};
pub use update::{Update, UpdateBatch};
