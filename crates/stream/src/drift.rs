//! The drift policy: when to fold the dynamic state back into a fresh
//! prepared artifact.
//!
//! The dynamic rows stay exact under any number of updates — folding is
//! never needed for *correctness*. What decays is the quality of the
//! prepared artifact serving read traffic: the epoch snapshot drifts
//! from the live graph, and the in-place patched slice population
//! (hence the paper's `NVS`-driven cost accounting) drifts from what
//! the artifact was priced for. The drift policy bounds that decay.

/// The measured drift of a dynamic graph since its last fold, fed to
/// [`DriftPolicy::should_fold`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftMeasure {
    /// Rows (vertices) whose neighbourhood changed since the last fold.
    pub touched_rows: usize,
    /// Total rows in the graph.
    pub total_rows: usize,
    /// Current valid slices across all dynamic rows.
    pub valid_slices: u64,
    /// Valid slices at the last fold.
    pub valid_slices_at_fold: u64,
    /// Updates applied since the last fold.
    pub updates_since_fold: u64,
}

impl DriftMeasure {
    /// Fraction of rows touched since the last fold, in `[0, 1]`.
    pub fn touched_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.touched_rows as f64 / self.total_rows as f64
        }
    }

    /// Relative change of the valid-slice population since the last
    /// fold (slice-validity decay), `|now − then| / then`.
    pub fn valid_slice_drift(&self) -> f64 {
        if self.valid_slices_at_fold == 0 {
            if self.valid_slices == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.valid_slices.abs_diff(self.valid_slices_at_fold)) as f64
                / self.valid_slices_at_fold as f64
        }
    }
}

/// When to fold dynamic state back through the pipeline. Each criterion
/// is optional; the policy folds when **any** enabled criterion is
/// exceeded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// Fold when more than this fraction of rows was touched since the
    /// last fold.
    pub max_touched_fraction: Option<f64>,
    /// Fold when the valid-slice population drifted by more than this
    /// relative amount since the last fold.
    pub max_valid_slice_drift: Option<f64>,
    /// Fold after this many applied updates regardless of locality.
    pub max_updates: Option<u64>,
}

impl Default for DriftPolicy {
    /// Fold when a quarter of the rows was touched or the valid-slice
    /// population moved by half; no unconditional update cap.
    fn default() -> Self {
        DriftPolicy {
            max_touched_fraction: Some(0.25),
            max_valid_slice_drift: Some(0.5),
            max_updates: None,
        }
    }
}

impl DriftPolicy {
    /// A policy that never folds — the dynamic state floats forever
    /// (useful for tests and pure write-only workloads).
    pub fn never() -> Self {
        DriftPolicy {
            max_touched_fraction: None,
            max_valid_slice_drift: None,
            max_updates: None,
        }
    }

    /// Whether `measure` exceeds any enabled criterion.
    pub fn should_fold(&self, measure: &DriftMeasure) -> bool {
        if let Some(limit) = self.max_touched_fraction {
            if measure.touched_fraction() > limit {
                return true;
            }
        }
        if let Some(limit) = self.max_valid_slice_drift {
            if measure.valid_slice_drift() > limit {
                return true;
            }
        }
        if let Some(limit) = self.max_updates {
            if measure.updates_since_fold > limit {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(
        touched: usize,
        total: usize,
        valid: u64,
        at_fold: u64,
        n: u64,
    ) -> DriftMeasure {
        DriftMeasure {
            touched_rows: touched,
            total_rows: total,
            valid_slices: valid,
            valid_slices_at_fold: at_fold,
            updates_since_fold: n,
        }
    }

    #[test]
    fn never_policy_never_folds() {
        let p = DriftPolicy::never();
        assert!(!p.should_fold(&measure(100, 100, 9999, 1, u64::MAX)));
    }

    #[test]
    fn touched_fraction_trips_the_default_policy() {
        let p = DriftPolicy::default();
        assert!(!p.should_fold(&measure(25, 100, 10, 10, 3)));
        assert!(p.should_fold(&measure(26, 100, 10, 10, 3)));
    }

    #[test]
    fn valid_slice_decay_trips_independently() {
        let p = DriftPolicy { max_touched_fraction: None, ..DriftPolicy::default() };
        assert!(!p.should_fold(&measure(99, 100, 150, 100, 1)));
        assert!(p.should_fold(&measure(1, 100, 151, 100, 1)));
        // Shrinkage counts as drift too (deletions hollow out slices).
        assert!(p.should_fold(&measure(1, 100, 49, 100, 1)));
    }

    #[test]
    fn update_cap_is_unconditional() {
        let p = DriftPolicy {
            max_touched_fraction: None,
            max_valid_slice_drift: None,
            max_updates: Some(10),
        };
        assert!(!p.should_fold(&measure(0, 10, 5, 5, 10)));
        assert!(p.should_fold(&measure(0, 10, 5, 5, 11)));
    }

    #[test]
    fn empty_graph_measures_zero_drift() {
        let m = measure(0, 0, 0, 0, 0);
        assert_eq!(m.touched_fraction(), 0.0);
        assert_eq!(m.valid_slice_drift(), 0.0);
        // Growth from an empty fold is infinite relative drift.
        assert!(measure(1, 2, 3, 0, 1).valid_slice_drift().is_infinite());
    }
}
