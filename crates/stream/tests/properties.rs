//! Crate-level invariant: under deterministic randomized churn, the
//! incrementally maintained count always equals a from-scratch recount,
//! and the dynamic rows always equal a fresh compression of the live
//! adjacency.

use tcim_core::baseline;
use tcim_graph::generators::{classic, gnm};
use tcim_graph::CsrGraph;
use tcim_stream::{DriftPolicy, DynamicGraph, StreamConfig, Update, UpdateBatch};

/// Splitmix-style deterministic stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn random_batch(rng: &mut Rng, dg: &DynamicGraph, len: usize) -> UpdateBatch {
    let n = dg.vertex_count() as u64;
    let mut batch = UpdateBatch::new();
    for _ in 0..len {
        let u = (rng.next() % n) as u32;
        let v = (rng.next() % n) as u32;
        // Bias towards valid updates but keep some adversarial ones
        // (self-loops, duplicates, unknown deletes) in the stream.
        if rng.next().is_multiple_of(2) {
            batch.push(Update::Insert(u, v));
        } else {
            batch.push(Update::Delete(u, v));
        }
    }
    batch
}

fn churn(g: &CsrGraph, label: &str, seed: u64) {
    churn_with(g, label, seed, tcim_bitmatrix::EncodingPolicy::default());
}

fn churn_with(g: &CsrGraph, label: &str, seed: u64, encoding: tcim_bitmatrix::EncodingPolicy) {
    let config = StreamConfig {
        tcim: tcim_core::TcimConfig { encoding, ..Default::default() },
        drift: DriftPolicy {
            max_touched_fraction: Some(0.6),
            max_valid_slice_drift: None,
            max_updates: None,
        },
        verify_on_fold: true,
        fanout_threshold: 4,
        ..StreamConfig::default()
    };
    let mut dg = DynamicGraph::new(g, config).unwrap();
    let mut rng = Rng(seed);
    for round in 0..12 {
        let batch = random_batch(&mut rng, &dg, 17);
        let outcome = dg.apply_batch(&batch).unwrap();
        let recount = baseline::edge_iterator_merge(&dg.snapshot());
        assert_eq!(
            dg.triangles(),
            recount,
            "{label} seed {seed} batch {round}: incremental vs recount"
        );
        assert_eq!(outcome.triangles, dg.triangles());
        assert_eq!(
            outcome.applied() + outcome.rejected.len(),
            batch.len(),
            "{label}: every update is either applied or rejected"
        );
    }
    // The dynamic rows stayed canonical: equal to a fresh slicing of
    // the final adjacency under the same encoding. (The fresh graph may
    // resolve a different encoding — churn changes density — so the
    // reference is re-encoded to the churned graph's.)
    let final_graph = dg.snapshot();
    let fresh = DynamicGraph::new(&final_graph, StreamConfig::default()).unwrap();
    for v in 0..dg.vertex_count() as u32 {
        assert_eq!(
            dg.row(v),
            &fresh.row(v).reencoded(dg.encoding()),
            "{label}: row {v} canonical form"
        );
    }
    assert_eq!(dg.valid_slices(), fresh.valid_slices());
    assert_eq!(
        dg.compressed_bytes(),
        (0..dg.vertex_count() as u32)
            .map(|v| fresh.row(v).reencoded(dg.encoding()).compressed_bytes() as u64)
            .sum::<u64>(),
        "{label}: patched bytes match a fresh compression"
    );
}

#[test]
fn fig2_churn_stays_exact() {
    churn(&classic::fig2_example(), "fig2", 1);
}

#[test]
fn wheel_churn_stays_exact() {
    churn(&classic::wheel(40), "wheel", 7);
}

#[test]
fn er_churn_stays_exact() {
    churn(&gnm(120, 700, 3).unwrap(), "er", 13);
}

#[test]
fn empty_graph_churn_stays_exact() {
    churn(&CsrGraph::from_edges(30, []).unwrap(), "empty", 29);
}

/// Sparse rows under churn: in-place patches on the hierarchical
/// encoding stay canonical and the maintained count stays exact, with
/// folds recounted through the sparse pipeline (`verify_on_fold`).
#[test]
fn er_churn_stays_exact_on_forced_sparse_rows() {
    let g = gnm(120, 700, 3).unwrap();
    churn_with(&g, "er-sparse", 13, tcim_bitmatrix::EncodingPolicy::ForceSparse);
}

#[test]
fn wheel_churn_stays_exact_on_forced_sparse_rows() {
    churn_with(
        &classic::wheel(40),
        "wheel-sparse",
        7,
        tcim_bitmatrix::EncodingPolicy::ForceSparse,
    );
}
