//! Offline vendored subset of the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate: scoped
//! threads, delegating to `std::thread::scope` (stable since Rust 1.63,
//! which is what made crossbeam's own implementation redundant upstream).
//!
//! Only the surface this workspace uses is provided:
//! `crossbeam::thread::scope(|s| …)` with `s.spawn(|_| …)` and
//! `handle.join()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure; spawns threads that
    /// may borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope in which borrowed-stack threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// Unlike upstream crossbeam this never returns `Err`: panics of
    /// unjoined child threads propagate out of `std::thread::scope`
    /// directly. Every call site in this workspace joins its handles and
    /// treats `Err` as fatal, so the behaviours coincide.
    ///
    /// # Errors
    ///
    /// Never returns `Err`; the `Result` exists for crossbeam API
    /// compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let result = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
