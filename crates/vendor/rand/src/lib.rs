//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *exact* API surface its
//! code uses — nothing more:
//!
//! * [`RngCore`] — the raw 64-bit generator interface.
//! * [`Rng`] — the user-facing extension trait: `gen`, `gen_range`,
//!   `gen_bool`, blanket-implemented for every [`RngCore`].
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` construction.
//!
//! Generators are expected to be deterministic per seed and portable
//! across platforms; the concrete generator lives in the sibling
//! `rand_chacha` shim. Sampling here uses widely published, unbiased-
//! enough constructions (Lemire-style multiply-shift for integers, the
//! 53-bit mantissa trick for floats); statistical quality is inherited
//! from the underlying ChaCha stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full domain by
/// [`Rng::gen`] (the shim's stand-in for `Standard` distributions).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    ///
    /// Panics on an empty range, like the real crate.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift keeps modulo bias below 2^-64.
                let scaled = (u128::from(rng.next_u64()) * width) >> 64;
                self.start + scaled as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let scaled = (u128::from(rng.next_u64()) * width) >> 64;
                (self.start as i128 + scaled as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let value = self.start + (self.end - self.start) * unit;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if value >= self.end {
            self.start.max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            value
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample_standard(rng);
        let value = self.start + (self.end - self.start) * unit;
        if value >= self.end {
            self.start.max(self.end - (self.end - self.start) * f32::EPSILON)
        } else {
            value
        }
    }
}

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's full domain
    /// (`bool`: fair coin; floats: `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like the real crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele et al.), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 over an incrementing counter: decent enough to
            // exercise the samplers.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_usize_range_samples() {
        let mut rng = Counter(4);
        let _ = rng.gen_range(0usize..usize::MAX);
    }
}
