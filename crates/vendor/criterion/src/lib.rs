//! Offline vendored subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no registry access, so this shim provides a
//! small wall-clock harness behind criterion's API: benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `bench_function` /
//! `bench_with_input`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Statistics are deliberately simple —
//! warm-up, a fixed number of timed samples, then min/median/mean — with
//! results printed one line per benchmark:
//!
//! ```text
//! pipeline/count/road_20x20    median 184.3 µs/iter  (24 samples × 7 iters, 11.2 MiB/s)
//! ```
//!
//! Like upstream, benchmark binaries must set `harness = false` in their
//! `[[bench]]` manifest section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How throughput is derived from elapsed time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured samples, one duration per batch of `iters_per_sample`.
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, running warm-up followed by the configured number
    /// of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration calibration: aim for samples
        // of ~2 ms so fast routines are not dominated by timer noise.
        let calibrate_start = Instant::now();
        black_box(routine());
        let once = calibrate_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample =
            (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn per_iter_nanos(&self) -> Vec<f64> {
        let mut nanos: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        nanos.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        nanos
    }
}

fn human_time(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.1} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.1} ms", nanos / 1e6)
    } else {
        format!("{:.2} s", nanos / 1e9)
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (upstream flushes reports here; the shim
    /// reports eagerly, so this only prints a separator).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let nanos = bencher.per_iter_nanos();
        if nanos.is_empty() {
            return;
        }
        let median = nanos[nanos.len() / 2];
        let throughput = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let mib_s = bytes as f64 / (1024.0 * 1024.0) / (median / 1e9);
                format!(", {mib_s:.1} MiB/s")
            }
            Some(Throughput::Elements(elems)) => {
                let elem_s = elems as f64 / (median / 1e9);
                format!(", {elem_s:.3e} elem/s")
            }
            None => String::new(),
        };
        println!(
            "{:<44} median {}/iter  ({} samples × {} iters{})",
            format!("{}/{}", self.name, id),
            human_time(median),
            bencher.samples.len(),
            bencher.iters_per_sample,
            throughput,
        );
        self.criterion.benchmarks_run += 1;
    }
}

/// The harness entry point; one per benchmark binary.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("── group {name} ──");
        BenchmarkGroup { criterion: self, name, throughput: None, sample_size: 24 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0, |acc, x| acc ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.throughput(Throughput::Bytes(8 * 1024));
            group.bench_function("xor_fold", |b| b.iter(|| work(black_box(1024))));
            group.bench_with_input(BenchmarkId::new("sized", 64), &64u64, |b, &n| {
                b.iter(|| work(n))
            });
            group.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("count", 16).to_string(), "count/16");
        assert_eq!(BenchmarkId::from_parameter("lru").to_string(), "lru");
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(12_340.0), "12.3 µs");
        assert_eq!(human_time(12_340_000.0), "12.3 ms");
    }
}
