//! Offline vendored subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no registry access, so this shim provides
//! the property-testing surface the workspace's `tests/properties.rs`
//! files use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`sample::select`], [`Just`], [`any`], the
//! [`proptest!`] macro and the `prop_assert*` / `prop_assume!` macros.
//!
//! Two deliberate simplifications relative to upstream:
//!
//! * **No shrinking.** A failing case reports its seed and case index;
//!   reproduction is deterministic (rerun the test), but inputs are not
//!   minimised.
//! * **64 cases per property by default** (upstream: 256). Override per
//!   block with `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The input was rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha12Rng);

impl TestRng {
    /// RNG for one case of one named property: deterministic in
    /// `(name, case)` so failures reproduce across runs and platforms.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha12Rng::seed_from_u64(h ^ (u64::from(case) << 32)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Full-domain generation for [`any`].
pub trait Arbitrary {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A `Vec` of `size`-range length with elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_size(&self.size, rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: the element domain may hold fewer than
            // `target` distinct values.
            for _ in 0..target.saturating_mul(4).saturating_add(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.sample(rng));
            }
            set
        }
    }

    /// A `BTreeSet` with up to `size`-range many elements from `elem`.
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { elem, size }
    }

    fn sample_size(range: &Range<usize>, rng: &mut TestRng) -> usize {
        if range.is_empty() {
            range.start
        } else {
            rng.gen_range(range.clone())
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::*;

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: &[T]) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty list");
        Select { options: options.to_vec() }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..100, y in any::<u64>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__name, __case);
                let ($($arg,)+) = $crate::Strategy::sample(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property {} falsified at case {}/{}: {}",
                            __name, __case, __config.cases, __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Skips the current case when an assumption about the generated input
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -4i32..4, f in 0.25..0.75f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Dependent generation: the vec length bound depends on `n`.
        #[test]
        fn flat_map_dependency(
            (n, xs) in (1usize..32).prop_flat_map(|n| {
                (Just(n), collection::vec(0usize..n, 0..64))
            }),
        ) {
            prop_assert!(n >= 1);
            for &x in &xs {
                prop_assert!(x < n, "x = {} out of bounds {}", x, n);
            }
        }

        /// btree_set yields distinct in-domain elements.
        #[test]
        fn btree_set_distinct(s in collection::btree_set(0usize..10, 0..32)) {
            prop_assert!(s.len() <= 10);
            for &x in &s {
                prop_assert!(x < 10);
            }
        }

        /// select only yields listed options.
        #[test]
        fn select_yields_options(v in sample::select(&[2usize, 3, 5, 7][..])) {
            prop_assert!([2, 3, 5, 7].contains(&v));
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let s = (0u64..1000, 0.0..1.0f64);
        let a = s.sample(&mut TestRng::for_case("x", 3));
        let b = s.sample(&mut TestRng::for_case("x", 3));
        let c = s.sample(&mut TestRng::for_case("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        always_fails();
    }
}
