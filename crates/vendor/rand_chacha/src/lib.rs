//! Offline vendored subset of the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate: the
//! [`ChaCha12Rng`] generator, implemented from the ChaCha specification
//! (Bernstein, 2008) with 12 rounds.
//!
//! Determinism and portability are what the workspace relies on — every
//! graph generator takes an explicit seed and must produce the same graph
//! on every platform. The keystream is *not* guaranteed to be bit-exact
//! with the upstream crate (seeding differs in the nonce handling), which
//! is fine: no test pins absolute stream values, only per-seed
//! determinism and statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// The ChaCha block function over `state`, with `rounds` rounds.
fn chacha_block(state: &[u32; 16], rounds: usize) -> [u32; 16] {
    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    let mut x = *state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (o, s) in x.iter_mut().zip(state.iter()) {
        *o = o.wrapping_add(*s);
    }
    x
}

/// A deterministic, seedable ChaCha generator with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key + constants + counter + nonce, laid out per the spec.
    state: [u32; 16],
    /// The current 64-byte output block, as 8 × u64 words.
    block: [u64; 8],
    /// Next unread word in `block` (8 = exhausted).
    index: usize,
}

impl ChaCha12Rng {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let out = chacha_block(&self.state, 12);
        for (i, pair) in out.chunks_exact(2).enumerate() {
            self.block[i] = u64::from(pair[0]) | (u64::from(pair[1]) << 32);
        }
        // 64-bit block counter in words 12..14.
        let counter = u64::from(self.state[12]) | (u64::from(self.state[13]) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha12Rng { state, block: [0; 8], index: 8 }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index >= 8 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha12Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha12Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut r = ChaCha12Rng::seed_from_u64(7);
        let first_block: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let second_block: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn mean_of_unit_floats_is_near_half() {
        let mut r = ChaCha12Rng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut r = ChaCha12Rng::seed_from_u64(3);
        let _ = r.next_u64();
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
