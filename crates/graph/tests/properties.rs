//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use tcim_graph::io::{read_snap_edges, write_snap_edges};
use tcim_graph::{CsrGraph, Orientation};

fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1usize..60).prop_flat_map(|n| {
        (Just(n), proptest::collection::vec((0..n as u32, 0..n as u32), 0..300))
    })
}

proptest! {
    #[test]
    fn handshake_lemma((n, edges) in edges_strategy()) {
        let g = CsrGraph::from_edges(n, edges).unwrap();
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn edges_iterator_agrees_with_count((n, edges) in edges_strategy()) {
        let g = CsrGraph::from_edges(n, edges).unwrap();
        prop_assert_eq!(g.edges().count(), g.edge_count());
        // Each iterated edge is canonical and present.
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn neighbor_lists_sorted_and_loop_free((n, edges) in edges_strategy()) {
        let g = CsrGraph::from_edges(n, edges).unwrap();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted/dup at {}", v);
            prop_assert!(!nbrs.contains(&v), "self loop at {}", v);
        }
    }

    #[test]
    fn snap_roundtrip_preserves_structure((n, edges) in edges_strategy()) {
        let g = CsrGraph::from_edges(n, edges).unwrap();
        let mut buf = Vec::new();
        write_snap_edges(&g, &mut buf).unwrap();
        let back = read_snap_edges(buf.as_slice()).unwrap();
        // Isolated vertices are not representable in an edge list and ids
        // are densely remapped, so the roundtrip preserves structure up to
        // relabelling: edge count and degree multiset must match.
        prop_assert_eq!(back.edge_count(), g.edge_count());
        let mut orig: Vec<usize> = g.vertices().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        let mut parsed: Vec<usize> = back.vertices().map(|v| back.degree(v)).collect();
        orig.sort_unstable();
        parsed.sort_unstable();
        prop_assert_eq!(parsed, orig);
    }

    #[test]
    fn orientations_preserve_arc_count((n, edges) in edges_strategy()) {
        let g = CsrGraph::from_edges(n, edges).unwrap();
        for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy] {
            let o = orientation.orient(&g);
            prop_assert_eq!(o.arc_count(), g.edge_count());
            prop_assert!(o.arcs().all(|(i, j)| i < j));
            // Row lists stay sorted for downstream slicing.
            for i in 0..o.vertex_count() as u32 {
                prop_assert!(o.row(i).windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn relabel_by_reversal_preserves_degree_multiset((n, edges) in edges_strategy()) {
        let g = CsrGraph::from_edges(n, edges).unwrap();
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let r = g.relabel(&perm);
        let mut a: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut b: Vec<usize> = r.vertices().map(|v| r.degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
