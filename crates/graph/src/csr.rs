//! Undirected simple graphs in compressed-sparse-row form.

use std::fmt;

use crate::error::{GraphError, Result};
use crate::stats::DegreeStats;

/// An undirected simple graph stored in CSR (compressed sparse row) form.
///
/// Construction deduplicates parallel edges, drops self-loops and sorts
/// every neighbour list ascending, so downstream consumers (slicing,
/// merge-based intersection) can rely on sorted adjacency. Both directions
/// of every edge are stored; [`CsrGraph::edge_count`] reports *undirected*
/// edges.
///
/// # Example
///
/// ```
/// use tcim_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 3)])?;
/// assert_eq!(g.edge_count(), 3);          // duplicate and self-loop dropped
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.degree(3), 1);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    neighbors: Vec<u32>,
    /// Number of undirected edges.
    edges: usize,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Self-loops are silently dropped (a simple graph has none, and the
    /// SNAP files the paper uses contain a few); duplicate edges in either
    /// direction are deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut directed: Vec<(u32, u32)> = Vec::new();
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u64::from(u),
                    count: n as u64,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u64::from(v),
                    count: n as u64,
                });
            }
            if u != v {
                directed.push((u, v));
                directed.push((v, u));
            }
        }
        directed.sort_unstable();
        directed.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &directed {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors = directed.into_iter().map(|(_, v)| v).collect::<Vec<_>>();
        let edges = neighbors.len() / 2;

        Ok(CsrGraph { offsets, neighbors, edges })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_count() == 0
    }

    /// The sorted neighbour list of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of bounds.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of bounds.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Returns `true` when the undirected edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of bounds.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over each undirected edge once, as `(min, max)` pairs in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.vertex_count() as u32).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> {
        0..self.vertex_count() as u32
    }

    /// Degree statistics (min/max/mean, histogram).
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::from_degrees(self.vertices().map(|v| self.degree(v)))
    }

    /// A structural fingerprint of the graph: an FNV-1a hash over the
    /// vertex count and the CSR arrays.
    ///
    /// Two equal graphs always fingerprint identically, so the value can
    /// key caches of per-graph derived artifacts (oriented/sliced forms)
    /// without retaining the graph itself. As with any 64-bit hash,
    /// distinct graphs may collide; cache keys should pair the
    /// fingerprint with the vertex and edge counts.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.vertex_count() as u64);
        for &o in &self.offsets {
            mix(o as u64);
        }
        for &v in &self.neighbors {
            mix(u64::from(v));
        }
        h
    }

    /// Relabels vertices by `perm` (new id = `perm[old id]`) and rebuilds
    /// the CSR. Used by degree-based orientations to improve slice locality.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[u32]) -> CsrGraph {
        let n = self.vertex_count();
        assert_eq!(perm.len(), n, "permutation length must equal vertex count");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(!seen[p as usize], "perm must be a bijection");
            seen[p as usize] = true;
        }
        let edges = self
            .edges()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect::<Vec<_>>();
        CsrGraph::from_edges(n, edges).expect("relabelled edges stay in bounds")
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsrGraph(|V|={}, |E|={})", self.vertex_count(), self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_deduplicated_csr() {
        let g = CsrGraph::from_edges(5, [(3, 1), (1, 3), (0, 1), (1, 2), (1, 2)]).unwrap();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    fn drops_self_loops() {
        let g = CsrGraph::from_edges(3, [(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = CsrGraph::from_edges(3, [(0, 3)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vertex: 3, count: 3 }));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = CsrGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = CsrGraph::from_edges(4, [(2, 0)]).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let g1 = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let g2 = CsrGraph::from_edges(4, [(2, 3), (1, 2), (0, 1), (1, 0)]).unwrap();
        // Equal graphs (construction normalises) → equal fingerprints.
        assert_eq!(g1, g2);
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        // Any structural change moves the fingerprint.
        let h = CsrGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        assert_ne!(g1.fingerprint(), h.fingerprint());
        let bigger = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_ne!(g1.fingerprint(), bigger.fingerprint());
        // Deterministic across calls.
        assert_eq!(g1.fingerprint(), g1.fingerprint());
    }

    #[test]
    fn degree_sums_to_twice_edges() {
        let g =
            CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.edge_count());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // Reverse the ids.
        let r = g.relabel(&[3, 2, 1, 0]);
        assert_eq!(r.edge_count(), 3);
        assert!(r.has_edge(3, 2));
        assert!(r.has_edge(2, 1));
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(3, 0));
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn relabel_rejects_non_permutation() {
        let g = CsrGraph::from_edges(2, [(0, 1)]).unwrap();
        g.relabel(&[0, 0]);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", CsrGraph::default()).is_empty());
    }
}
