//! Graph substrate for the TCIM reproduction.
//!
//! The TCIM paper evaluates on nine SNAP graphs (Table II). This crate
//! provides everything needed to feed such graphs into the accelerator
//! simulation:
//!
//! * [`CsrGraph`] — an undirected simple graph in compressed-sparse-row
//!   form with sorted neighbour lists.
//! * [`io`] — a parser/writer for the SNAP edge-list format, so the real
//!   datasets drop in when available.
//! * [`generators`] — deterministic, seedable synthetic generators
//!   (Erdős–Rényi, Barabási–Albert, R-MAT, Watts–Strogatz, road-style grid
//!   lattices, and closed-form reference graphs).
//! * [`datasets`] — the Table II catalog with family-matched synthetic
//!   stand-ins at configurable scale (see DESIGN.md §2 for the
//!   substitution rationale).
//! * [`Orientation`] — the edge orientations used to make the paper's
//!   Equation (5) count each triangle exactly once.
//! * [`components`] — connected components and the largest-component
//!   extraction SNAP datasets conventionally apply.
//! * [`oracle`] — naive, obviously-correct reference implementations of
//!   the motif analytics (k-truss trussness, 4-clique counts) that the
//!   accelerated kernel paths are differentially tested against.
//!
//! # Example
//!
//! ```
//! use tcim_graph::generators::classic;
//! use tcim_graph::Orientation;
//!
//! // The 4-vertex, 5-edge, 2-triangle graph of the paper's Fig. 2.
//! let g = classic::fig2_example();
//! assert_eq!(g.vertex_count(), 4);
//! assert_eq!(g.edge_count(), 5);
//!
//! // Orient it upper-triangularly, as the paper's Fig. 2 does.
//! let oriented = Orientation::Natural.orient(&g);
//! assert_eq!(oriented.arc_count(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
mod csr;
pub mod datasets;
mod error;
pub mod generators;
pub mod io;
pub mod oracle;
mod orientation;
mod stats;

pub use csr::CsrGraph;
pub use error::{GraphError, Result};
pub use orientation::{Orientation, OrientedGraph};
pub use stats::DegreeStats;
