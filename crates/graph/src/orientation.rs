//! Edge orientations turning the undirected graph into the DAG whose
//! adjacency matrix drives Equation (5).
//!
//! The paper's Fig. 2 works on an *upper-triangular* adjacency matrix: each
//! undirected edge `{u, v}` is stored once as `A[min][max] = 1`. Under that
//! orientation `BitCount(AND(R_i, C_j))` for an arc `(i, j)` counts exactly
//! the common neighbours `k` with `i < k < j`, so every triangle is counted
//! exactly once and the per-edge results sum to `TC(G)` with no division.
//!
//! [`Orientation::Degree`] additionally relabels vertices by ascending
//! degree first — the classical trick that bounds the out-degree of the
//! oriented DAG and balances row/column density. The paper uses the natural
//! order; the degree order is one of the DESIGN.md ablations.

use crate::csr::CsrGraph;

/// Strategy for orienting the undirected graph before counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Orientation {
    /// Orient each edge from the smaller to the larger vertex id
    /// (the paper's upper-triangular matrix).
    #[default]
    Natural,
    /// Relabel vertices by ascending degree (ties by id), then orient from
    /// smaller to larger new id.
    Degree,
    /// Relabel vertices in degeneracy (k-core peeling) order, then orient
    /// from smaller to larger new id. Bounds every out-degree by the
    /// graph's degeneracy — the strongest guarantee for the per-row work
    /// of the TCIM kernel.
    Degeneracy,
}

impl Orientation {
    /// Orients `g`, producing the DAG adjacency used by the TCIM kernel.
    pub fn orient(self, g: &CsrGraph) -> OrientedGraph {
        match self {
            Orientation::Natural => OrientedGraph::upper_triangular(g),
            Orientation::Degree => {
                let n = g.vertex_count();
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_by_key(|&v| (g.degree(v), v));
                // perm[old] = new rank.
                let mut perm = vec![0u32; n];
                for (rank, &v) in order.iter().enumerate() {
                    perm[v as usize] = rank as u32;
                }
                OrientedGraph::with_permutation(g, &perm)
            }
            Orientation::Degeneracy => {
                let perm = degeneracy_order(g);
                OrientedGraph::with_permutation(g, &perm)
            }
        }
    }
}

/// Computes the degeneracy (k-core peeling) permutation with the classic
/// bucket algorithm in `O(n + m)`: repeatedly remove a vertex of minimum
/// remaining degree. Returns `perm[old_id] = peel rank`.
fn degeneracy_order(g: &CsrGraph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_degree + 1];
    for v in 0..n as u32 {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut perm = vec![0u32; n];
    let mut cursor = 0usize; // lowest possibly non-empty bucket
    for rank in 0..n as u32 {
        // Find the minimum-degree live vertex. `cursor` only moves down by
        // one per neighbour update, keeping the total cost linear.
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == cursor => break v,
                Some(_) => continue, // stale entry
                None => cursor += 1,
            }
        };
        removed[v as usize] = true;
        perm[v as usize] = rank;
        for &w in g.neighbors(v) {
            let dw = &mut degree[w as usize];
            if !removed[w as usize] && *dw > 0 {
                *dw -= 1;
                buckets[*dw].push(w);
                cursor = cursor.min(*dw);
            }
        }
    }
    perm
}

/// The oriented (DAG) form of an undirected graph: for every vertex `i`,
/// the sorted list of arc heads `j > i`.
///
/// This is precisely the row structure of the upper-triangular adjacency
/// matrix the paper slices and maps into MRAM. When the orientation
/// relabelled vertices (degree/degeneracy order), the graph remembers the
/// mapping so per-vertex results can be translated back
/// ([`OrientedGraph::original_id`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OrientedGraph {
    rows: Vec<Vec<u32>>,
    /// `original[new_id] = old_id`; `None` for the identity relabelling.
    original: Option<Vec<u32>>,
}

impl OrientedGraph {
    fn upper_triangular(g: &CsrGraph) -> Self {
        let rows = g
            .vertices()
            .map(|u| g.neighbors(u).iter().copied().filter(|&v| v > u).collect::<Vec<u32>>())
            .collect();
        OrientedGraph { rows, original: None }
    }

    fn with_permutation(g: &CsrGraph, perm: &[u32]) -> Self {
        let relabelled = g.relabel(perm);
        let mut original = vec![0u32; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            original[new as usize] = old as u32;
        }
        OrientedGraph {
            original: Some(original),
            ..OrientedGraph::upper_triangular(&relabelled)
        }
    }

    /// Maps a vertex id of the oriented graph back to the id in the input
    /// graph (identity for [`Orientation::Natural`]).
    ///
    /// # Panics
    ///
    /// Panics when `new_id` is out of bounds.
    pub fn original_id(&self, new_id: u32) -> u32 {
        match &self.original {
            Some(map) => map[new_id as usize],
            None => new_id,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of arcs — equal to the undirected edge count.
    pub fn arc_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The sorted arc heads of vertex `i` (`{j : A[i][j] = 1}`).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn row(&self, i: u32) -> &[u32] {
        &self.rows[i as usize]
    }

    /// All rows as a slice, ready for `SlicedMatrix::from_adjacency`.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Iterates over all arcs `(i, j)` in row-major order — the iteration
    /// order of Algorithm 1.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&j| (i as u32, j)))
    }

    /// Maximum out-degree of the DAG (bounds the paper's per-row work).
    pub fn max_out_degree(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn natural_orientation_is_upper_triangular() {
        let g = classic::fig2_example();
        let o = Orientation::Natural.orient(&g);
        assert_eq!(o.row(0), &[1, 2]);
        assert_eq!(o.row(1), &[2, 3]);
        assert_eq!(o.row(2), &[3]);
        assert_eq!(o.row(3), &[] as &[u32]);
        assert_eq!(o.arc_count(), g.edge_count());
    }

    #[test]
    fn arcs_point_upward() {
        let g = classic::complete(20);
        for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy]
        {
            let o = orientation.orient(&g);
            assert!(o.arcs().all(|(i, j)| i < j));
            assert_eq!(o.arc_count(), g.edge_count());
        }
    }

    #[test]
    fn degeneracy_orientation_bounds_out_degree_by_core_number() {
        // A wheel has degeneracy 3 (rim vertices peel at degree 3); the
        // hub's natural out-degree is n−1 but degeneracy order caps it.
        let g = classic::wheel(50);
        let o = Orientation::Degeneracy.orient(&g);
        assert!(o.max_out_degree() <= 3, "max out-degree {}", o.max_out_degree());
        // And a complete graph's degeneracy is n−1, trivially satisfied.
        let k = classic::complete(10);
        let ok = Orientation::Degeneracy.orient(&k);
        assert_eq!(ok.max_out_degree(), 9);
    }

    #[test]
    fn degeneracy_on_star_points_leaves_at_hub() {
        let g = classic::star(64);
        let o = Orientation::Degeneracy.orient(&g);
        assert_eq!(o.max_out_degree(), 1);
        assert_eq!(o.arc_count(), 63);
    }

    #[test]
    fn degree_orientation_bounds_star_out_degree() {
        // Star with hub 0: natural orientation gives the hub out-degree n-1;
        // degree orientation moves the hub last, so every leaf points at it
        // and the max out-degree drops to 1.
        let g = classic::star(100);
        let natural = Orientation::Natural.orient(&g);
        assert_eq!(natural.max_out_degree(), 99);
        let degree = Orientation::Degree.orient(&g);
        assert_eq!(degree.max_out_degree(), 1);
    }

    #[test]
    fn orientation_preserves_arc_count() {
        let g = classic::wheel(13);
        let a = Orientation::Natural.orient(&g).arc_count();
        let b = Orientation::Degree.orient(&g).arc_count();
        assert_eq!(a, g.edge_count());
        assert_eq!(b, g.edge_count());
    }

    #[test]
    fn original_id_roundtrips() {
        let g = classic::wheel(12);
        for orientation in [Orientation::Natural, Orientation::Degree, Orientation::Degeneracy]
        {
            let o = orientation.orient(&g);
            // Every original id appears exactly once under the mapping.
            let mut seen: Vec<u32> =
                (0..o.vertex_count() as u32).map(|v| o.original_id(v)).collect();
            seen.sort_unstable();
            let expected: Vec<u32> = (0..g.vertex_count() as u32).collect();
            assert_eq!(seen, expected, "{orientation:?}");
        }
        // Natural is the identity.
        let o = Orientation::Natural.orient(&g);
        assert_eq!(o.original_id(5), 5);
    }

    #[test]
    fn empty_graph_orients_to_empty_dag() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        let o = Orientation::Natural.orient(&g);
        assert_eq!(o.vertex_count(), 0);
        assert_eq!(o.arc_count(), 0);
        assert_eq!(o.max_out_degree(), 0);
    }
}
