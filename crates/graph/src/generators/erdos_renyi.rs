//! Erdős–Rényi random graphs.

use rand::Rng;

use super::rng_from_seed;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Uniform random graph `G(n, m)` with exactly `m` distinct edges.
///
/// Sampling is rejection-based over vertex pairs, which is efficient while
/// `m` is well below `C(n, 2)` — always the case for the sparse graphs the
/// paper evaluates.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `m` exceeds `C(n, 2)`.
///
/// # Example
///
/// ```
/// use tcim_graph::generators::gnm;
///
/// let g = gnm(100, 250, 42)?;
/// assert_eq!(g.vertex_count(), 100);
/// assert_eq!(g.edge_count(), 250);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max {
        return Err(GraphError::InvalidParameter {
            reason: format!("m = {m} exceeds the C(n,2) = {max} possible edges"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// Bernoulli random graph `G(n, p)`: every pair independently with
/// probability `p`, sampled via geometric skipping in `O(m)` expected time.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("probability p = {p} outside [0, 1]"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    if p > 0.0 {
        // Iterate pairs (u < v) with geometric jumps of mean 1/p.
        let total_pairs = n as u64 * (n as u64 - 1) / 2;
        let log_q = (1.0 - p).ln();
        let mut idx: u64 = 0;
        while idx < total_pairs {
            if p >= 1.0 {
                edges.push(pair_from_index(idx, n as u64));
                idx += 1;
                continue;
            }
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (r.ln() / log_q).floor() as u64;
            idx = idx.saturating_add(skip);
            if idx >= total_pairs {
                break;
            }
            edges.push(pair_from_index(idx, n as u64));
            idx += 1;
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// Maps a linear index in `[0, C(n,2))` to the corresponding pair `(u, v)`
/// with `u < v`, enumerating row by row.
fn pair_from_index(idx: u64, n: u64) -> (u32, u32) {
    // Row u owns (n - 1 - u) pairs. Walk rows arithmetically.
    let mut u = 0u64;
    let mut remaining = idx;
    loop {
        let row_len = n - 1 - u;
        if remaining < row_len {
            return (u as u32, (u + 1 + remaining) as u32);
        }
        remaining -= row_len;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(50, 100, 1).unwrap();
        assert_eq!(g.vertex_count(), 50);
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        let a = gnm(64, 128, 7).unwrap();
        let b = gnm(64, 128, 7).unwrap();
        let c = gnm(64, 128, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        assert!(gnm(4, 7, 0).is_err()); // C(4,2) = 6
        assert!(gnm(4, 6, 0).is_ok());
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp(30, 0.0, 0).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(30, 1.0, 0).unwrap();
        assert_eq!(full.edge_count(), 30 * 29 / 2);
    }

    #[test]
    fn gnp_rejects_bad_probability() {
        assert!(gnp(10, -0.1, 0).is_err());
        assert!(gnp(10, 1.1, 0).is_err());
        assert!(gnp(10, f64::NAN, 0).is_err());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 3).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        // Within 10 standard deviations — essentially never flakes.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!((actual - expected).abs() < 10.0 * sd, "actual {actual}, expected {expected}");
    }

    #[test]
    fn pair_index_enumeration_is_bijective() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }
}
