//! Watts–Strogatz small-world graphs.

use rand::Rng;

use super::rng_from_seed;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Watts–Strogatz small-world graph: a ring lattice where every vertex
/// connects to its `k` nearest neighbours (`k/2` on each side), with each
/// edge rewired to a random endpoint with probability `beta`.
///
/// At `beta = 0` the lattice is maximally clustered (many triangles); at
/// `beta = 1` it approaches a random graph. Used by the dataset catalog to
/// tune clustering between the road-grid and social regimes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use tcim_graph::generators::watts_strogatz;
///
/// let g = watts_strogatz(100, 6, 0.1, 42)?;
/// assert_eq!(g.vertex_count(), 100);
/// assert!(g.edge_count() <= 300);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    if !k.is_multiple_of(2) || k == 0 || k >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("ring degree k = {k} must be even and 0 < k < n = {n}"),
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter {
            reason: format!("rewiring probability beta = {beta} outside [0, 1]"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(n * k / 2);
    for u in 0..n as u32 {
        for hop in 1..=(k / 2) as u32 {
            let v = (u + hop) % n as u32;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniform non-self target.
                let mut t = rng.gen_range(0..n as u32);
                while t == u {
                    t = rng.gen_range(0..n as u32);
                }
                edges.push((u, t));
            } else {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrewired_lattice_is_regular() {
        let g = watts_strogatz(50, 4, 0.0, 0).unwrap();
        assert_eq!(g.edge_count(), 100);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn rewiring_preserves_vertex_count() {
        let g = watts_strogatz(80, 6, 0.5, 3).unwrap();
        assert_eq!(g.vertex_count(), 80);
        // Rewiring can collide, so edges ≤ n·k/2.
        assert!(g.edge_count() <= 240);
        assert!(g.edge_count() > 180);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err()); // odd k
        assert!(watts_strogatz(10, 0, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 10, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 4, 1.5, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            watts_strogatz(60, 4, 0.2, 11).unwrap(),
            watts_strogatz(60, 4, 0.2, 11).unwrap()
        );
    }

    #[test]
    fn lattice_with_k4_has_triangles() {
        // k = 4 ring lattice: each vertex forms a triangle with its two
        // right neighbours, so triangles exist deterministically.
        let g = watts_strogatz(30, 4, 0.0, 0).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }
}
