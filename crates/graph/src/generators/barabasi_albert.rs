//! Barabási–Albert preferential attachment graphs.
//!
//! Social and collaboration networks (the `ego-facebook`, `com-DBLP`,
//! `com-Amazon`, `com-Youtube`, `com-LiveJournal` rows of the paper's
//! Table II) have heavy-tailed degree distributions and many triangles.
//! Preferential attachment reproduces the heavy tail; the dataset catalog
//! layers extra closure edges on top when a family needs a higher
//! clustering coefficient.

use rand::Rng;

use super::rng_from_seed;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Barabási–Albert graph: starts from a small clique and attaches each new
/// vertex to `m` existing vertices chosen proportionally to degree.
///
/// The implementation uses the classic repeated-endpoint list so that
/// sampling is `O(1)` per edge; multi-edges are collapsed by the CSR
/// constructor, so the final edge count can be marginally below
/// `m · (n − m)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `m == 0` or `m >= n`.
///
/// # Example
///
/// ```
/// use tcim_graph::generators::barabasi_albert;
///
/// let g = barabasi_albert(1000, 5, 42)?;
/// assert_eq!(g.vertex_count(), 1000);
/// let stats = g.degree_stats();
/// assert!(stats.max > 3 * 5); // hubs emerge
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    if m == 0 || m >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("attachment count m = {m} must satisfy 0 < m < n = {n}"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Endpoint multiset: vertex v appears degree(v) times.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);

    // Seed clique on the first m + 1 vertices.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for v in (m as u32 + 1)..(n as u32) {
        // A sorted Vec keeps insertion order deterministic for a given
        // seed (HashSet iteration order would leak into later sampling).
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        targets.sort_unstable();
        for &t in &targets {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }

    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_edge_count() {
        let n = 500;
        let m = 4;
        let g = barabasi_albert(n, m, 9).unwrap();
        // Seed clique C(m+1, 2) plus m per additional vertex (minus the
        // rare collapsed duplicates, which cannot occur here because the
        // target set is deduplicated per vertex).
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(200, 3, 1).unwrap(), barabasi_albert(200, 3, 1).unwrap());
        assert_ne!(barabasi_albert(200, 3, 1).unwrap(), barabasi_albert(200, 3, 2).unwrap());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(barabasi_albert(10, 0, 0).is_err());
        assert!(barabasi_albert(10, 10, 0).is_err());
        assert!(barabasi_albert(10, 11, 0).is_err());
    }

    #[test]
    fn heavy_tail_emerges() {
        let g = barabasi_albert(2000, 3, 5).unwrap();
        let stats = g.degree_stats();
        // Hubs should far exceed the mean degree (~6).
        assert!(stats.max as f64 > 5.0 * stats.mean, "{stats}");
        // Youngest vertices keep degree ≈ m.
        assert!(stats.min >= 3);
    }

    #[test]
    fn minimum_viable_graph() {
        let g = barabasi_albert(3, 1, 0).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert!(g.edge_count() >= 2);
    }
}
