//! Road-network-style graphs: near-planar grids with sparse shortcuts.
//!
//! The paper's `roadNet-PA/TX/CA` graphs are street networks: bounded
//! degree (≈ 2.5 mean), huge diameter, and *very* few triangles relative
//! to their size (e.g. roadNet-PA: 1.09 M vertices, 1.54 M edges, but only
//! 67 k triangles). A perturbed grid with occasional diagonal shortcuts
//! reproduces exactly that regime: mean degree slightly above 2.8 with a
//! small, tunable triangle density.

use rand::Rng;

use super::rng_from_seed;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Generates a road-style network on a `width × height` grid.
///
/// Each grid point connects to its right and down neighbours; every such
/// lattice edge is kept with probability `keep`, and each unit square adds
/// one diagonal (forming two potential triangles with its sides) with
/// probability `diagonal`. Road networks correspond to `keep ≈ 0.95`,
/// `diagonal ≈ 0.03`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty grids or
/// probabilities outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use tcim_graph::generators::road_grid;
///
/// let g = road_grid(100, 100, 0.95, 0.03, 42)?;
/// assert_eq!(g.vertex_count(), 10_000);
/// let stats = g.degree_stats();
/// assert!(stats.mean < 4.0); // bounded-degree, road-like
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn road_grid(
    width: usize,
    height: usize,
    keep: f64,
    diagonal: f64,
    seed: u64,
) -> Result<CsrGraph> {
    if width == 0 || height == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid dimensions must be positive".to_string(),
        });
    }
    for (name, p) in [("keep", keep), ("diagonal", diagonal)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter {
                reason: format!("probability {name} = {p} outside [0, 1]"),
            });
        }
    }
    let n = width * height;
    let at = |x: usize, y: usize| (y * width + x) as u32;
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity((2.0 * n as f64 * keep) as usize);

    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.gen::<f64>() < keep {
                edges.push((at(x, y), at(x + 1, y)));
            }
            if y + 1 < height && rng.gen::<f64>() < keep {
                edges.push((at(x, y), at(x, y + 1)));
            }
            if x + 1 < width && y + 1 < height && rng.gen::<f64>() < diagonal {
                // Either diagonal of the unit square, at random.
                if rng.gen::<bool>() {
                    edges.push((at(x, y), at(x + 1, y + 1)));
                } else {
                    edges.push((at(x + 1, y), at(x, y + 1)));
                }
            }
        }
    }
    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_edge_count() {
        // keep = 1, diagonal = 0: exact lattice count 2wh − w − h.
        let g = road_grid(10, 8, 1.0, 0.0, 0).unwrap();
        assert_eq!(g.vertex_count(), 80);
        assert_eq!(g.edge_count(), 2 * 80 - 10 - 8);
    }

    #[test]
    fn pure_lattice_is_triangle_free_by_construction() {
        let g = road_grid(20, 20, 1.0, 0.0, 0).unwrap();
        // A square lattice is bipartite → no triangles. Spot-check: no two
        // neighbours of any vertex are adjacent.
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    assert!(!g.has_edge(a, b), "triangle at {v}: {a}, {b}");
                }
            }
        }
    }

    #[test]
    fn diagonals_create_triangles() {
        let g = road_grid(30, 30, 1.0, 1.0, 1).unwrap();
        // With every diagonal present, each unit square closes a triangle.
        let mut found = false;
        'outer: for v in g.vertices() {
            let nbrs = g.neighbors(v);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn degree_is_bounded() {
        let g = road_grid(50, 50, 0.95, 0.03, 2).unwrap();
        // Max possible degree: 4 lattice + 4 diagonal endpoints = 8.
        assert!(g.degree_stats().max <= 8);
        assert!(g.degree_stats().mean < 4.2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(road_grid(0, 5, 1.0, 0.0, 0).is_err());
        assert!(road_grid(5, 0, 1.0, 0.0, 0).is_err());
        assert!(road_grid(5, 5, 1.5, 0.0, 0).is_err());
        assert!(road_grid(5, 5, 1.0, -0.1, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            road_grid(15, 15, 0.9, 0.05, 6).unwrap(),
            road_grid(15, 15, 0.9, 0.05, 6).unwrap()
        );
    }
}
