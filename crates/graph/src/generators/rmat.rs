//! Recursive-matrix (R-MAT) graphs, the Graph500 generator family.

use rand::Rng;

use super::rng_from_seed;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Quadrant probabilities of the R-MAT recursion.
///
/// The defaults are the Graph500 parameters `(a, b, c, d) =
/// (0.57, 0.19, 0.19, 0.05)`, which produce the skewed, community-like
/// structure typical of web and social graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

impl RmatParams {
    /// Validates that the four probabilities are non-negative and sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<()> {
        let sum = self.a + self.b + self.c + self.d;
        let all_nonneg = self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0;
        if !all_nonneg || (sum - 1.0).abs() > 1e-9 {
            return Err(GraphError::InvalidParameter {
                reason: format!("rmat probabilities must be ≥ 0 and sum to 1 (got sum {sum})"),
            });
        }
        Ok(())
    }
}

/// R-MAT graph on `2^scale` vertices with approximately `m` edges.
///
/// Each edge lands by descending `scale` levels of the recursive 2×2
/// partition; duplicates and self-loops are dropped by the CSR
/// constructor, so the realised edge count is slightly below `m` for dense
/// corners — matching standard R-MAT practice.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for invalid probabilities or a
/// scale that does not fit in `u32` vertex ids.
///
/// # Example
///
/// ```
/// use tcim_graph::generators::{rmat, RmatParams};
///
/// let g = rmat(10, 5000, RmatParams::default(), 42)?;
/// assert_eq!(g.vertex_count(), 1024);
/// // Duplicates collapse, so the realised count sits below the request.
/// assert!(g.edge_count() > 3000);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Result<CsrGraph> {
    params.validate()?;
    if scale >= 31 {
        return Err(GraphError::InvalidParameter {
            reason: format!("scale {scale} too large for u32 vertex ids"),
        });
    }
    let n = 1usize << scale;
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < params.a {
                // top-left: no bits set
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(8, 1000, RmatParams::default(), 0).unwrap();
        assert_eq!(g.vertex_count(), 256);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(9, 2000, RmatParams::default(), 4).unwrap();
        let b = rmat(9, 2000, RmatParams::default(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_probabilities() {
        let bad = RmatParams { a: 0.5, b: 0.5, c: 0.5, d: -0.5 };
        assert!(bad.validate().is_err());
        assert!(rmat(4, 10, bad, 0).is_err());
        let not_normalised = RmatParams { a: 0.5, b: 0.1, c: 0.1, d: 0.1 };
        assert!(not_normalised.validate().is_err());
    }

    #[test]
    fn rejects_oversized_scale() {
        assert!(rmat(31, 10, RmatParams::default(), 0).is_err());
    }

    #[test]
    fn skew_produces_hubs() {
        let g = rmat(10, 8000, RmatParams::default(), 7).unwrap();
        let stats = g.degree_stats();
        assert!(stats.max as f64 > 4.0 * stats.mean, "{stats}");
    }

    #[test]
    fn uniform_params_resemble_gnm() {
        // a=b=c=d=0.25 is an unskewed random graph.
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
        let g = rmat(9, 3000, p, 1).unwrap();
        let stats = g.degree_stats();
        assert!(stats.max < 40, "uniform rmat should have no big hubs: {stats}");
    }
}
