//! Deterministic, seedable synthetic graph generators.
//!
//! The paper evaluates on real SNAP datasets which are not redistributable
//! inside this repository; the generators here produce family-matched
//! synthetic stand-ins (see `datasets` and DESIGN.md §2). All generators
//! take an explicit `seed` and use a counter-based RNG so results are
//! stable across platforms and runs.

pub mod barabasi_albert;
pub mod classic;
pub mod erdos_renyi;
pub mod rmat;
pub mod road;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::{gnm, gnp};
pub use rmat::{rmat, RmatParams};
pub use road::road_grid;
pub use watts_strogatz::watts_strogatz;

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG used by every generator: explicit seed, portable stream.
pub(crate) fn rng_from_seed(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}
