//! Closed-form reference graphs with known triangle counts.
//!
//! These anchor the verification strategy of DESIGN.md §6: every counting
//! path (dense, sliced, simulated) must reproduce the closed-form counts.

use crate::csr::CsrGraph;

/// The 4-vertex, 5-edge graph of the paper's Fig. 2, with exactly two
/// triangles (`0–1–2` and `1–2–3`).
///
/// # Example
///
/// ```
/// use tcim_graph::generators::classic;
///
/// let g = classic::fig2_example();
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 5);
/// ```
pub fn fig2_example() -> CsrGraph {
    CsrGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        .expect("static edge list is valid")
}

/// The complete graph `K_n`, with `C(n, 3)` triangles.
pub fn complete(n: usize) -> CsrGraph {
    let edges = (0..n as u32).flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)));
    CsrGraph::from_edges(n, edges).expect("generated edges are in bounds")
}

/// Number of triangles in `K_n`: `n·(n−1)·(n−2)/6`.
pub fn complete_triangles(n: usize) -> u64 {
    let n = n as u64;
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

/// The star `S_n` (one hub, `n − 1` leaves): zero triangles.
pub fn star(n: usize) -> CsrGraph {
    let edges = (1..n as u32).map(|v| (0, v));
    CsrGraph::from_edges(n, edges).expect("generated edges are in bounds")
}

/// The cycle `C_n`: one triangle for `n = 3`, zero otherwise.
pub fn cycle(n: usize) -> CsrGraph {
    let edges = (0..n as u32).map(|u| (u, (u + 1) % n as u32));
    CsrGraph::from_edges(n, edges).expect("generated edges are in bounds")
}

/// The wheel `W_n` (cycle of `n − 1` rim vertices plus a hub): `n − 1`
/// triangles for `n ≥ 4`.
pub fn wheel(n: usize) -> CsrGraph {
    assert!(n >= 4, "a wheel needs at least 4 vertices");
    let rim = n as u32 - 1;
    let spokes = (1..n as u32).map(|v| (0, v));
    let rim_edges = (0..rim).map(move |i| (1 + i, 1 + (i + 1) % rim));
    CsrGraph::from_edges(n, spokes.chain(rim_edges)).expect("generated edges are in bounds")
}

/// The complete bipartite graph `K_{a,b}`: triangle-free.
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let edges =
        (0..a as u32).flat_map(move |u| (a as u32..(a + b) as u32).map(move |v| (u, v)));
    CsrGraph::from_edges(a + b, edges).expect("generated edges are in bounds")
}

/// The path `P_n`: triangle-free.
pub fn path(n: usize) -> CsrGraph {
    let edges = (0..n.saturating_sub(1) as u32).map(|u| (u, u + 1));
    CsrGraph::from_edges(n, edges).expect("generated edges are in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape() {
        let g = fig2_example();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
        assert_eq!(complete_triangles(6), 20);
        assert_eq!(complete_triangles(2), 0);
    }

    #[test]
    fn star_and_cycle_shapes() {
        assert_eq!(star(10).edge_count(), 9);
        assert_eq!(cycle(10).edge_count(), 10);
        assert_eq!(cycle(10).degree(0), 2);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(7); // hub + 6 rim
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 6);
        assert!(g.vertices().skip(1).all(|v| g.degree(v) == 3));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn wheel_too_small_panics() {
        wheel(3);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn path_shape() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).edge_count(), 0);
    }
}
