//! SNAP edge-list input/output.
//!
//! The paper's datasets come from the SNAP collection, distributed as
//! whitespace-separated edge lists with `#`-prefixed comment lines. This
//! module parses that format (so the real files drop in when available)
//! and writes it back out (so synthetic stand-ins can be inspected with
//! standard tooling).

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Interns a raw SNAP vertex id as a dense `u32` in first-appearance
/// order, refusing (rather than silently wrapping) once the distinct-id
/// population exceeds the `u32` id space.
fn intern(raw: u64, ids: &mut HashMap<u64, u32>, lineno: usize) -> Result<u32> {
    if let Some(&id) = ids.get(&raw) {
        return Ok(id);
    }
    let next = u32::try_from(ids.len()).map_err(|_| GraphError::Parse {
        line: lineno,
        content: format!("vertex id {raw}: more than u32::MAX distinct vertex ids"),
    })?;
    ids.insert(raw, next);
    Ok(next)
}

/// Reads a SNAP-format edge list: one `u v` pair per line, `#` comments,
/// arbitrary whitespace, arbitrary (possibly sparse) vertex ids.
///
/// Vertex ids are remapped densely in first-appearance order, matching the
/// usual preprocessing step for CSR construction. Self-loops and duplicate
/// edges are dropped by the CSR builder. A single line buffer is reused
/// across the whole input, so parsing allocates per distinct vertex, not
/// per line.
///
/// `edge_hint` pre-reserves the edge vector (0 for unknown);
/// [`read_snap_edges_path`] derives it from the file size.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] (carrying the 1-based line number) for
/// malformed lines and for inputs with more than `u32::MAX` distinct
/// vertex ids, and [`GraphError::Io`] for read failures.
///
/// # Example
///
/// ```
/// use tcim_graph::io::read_snap_edges;
///
/// let text = "# tiny graph\n0\t1\n1\t2\n2\t0\n";
/// let g = read_snap_edges(text.as_bytes())?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn read_snap_edges<R: Read>(reader: R) -> Result<CsrGraph> {
    read_snap_edges_with_hint(reader, 0)
}

/// Reads a SNAP-format edge list from a file path; see
/// [`read_snap_edges`]. The edge vector is pre-reserved from the file
/// size (SNAP lines run ~10–20 bytes each).
///
/// # Errors
///
/// As [`read_snap_edges`], plus [`GraphError::Io`] when the file cannot
/// be opened.
pub fn read_snap_edges_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = File::open(path)?;
    let hint = file.metadata().map(|m| m.len() as usize / 12).unwrap_or(0);
    read_snap_edges_with_hint(file, hint)
}

fn read_snap_edges_with_hint<R: Read>(reader: R, edge_hint: usize) -> Result<CsrGraph> {
    let mut reader = BufReader::new(reader);
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(edge_hint);
    let mut line = String::new();
    let mut lineno = 0usize;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            tok.and_then(|t| t.parse::<u64>().ok()).ok_or_else(|| GraphError::Parse {
                line: lineno,
                content: trimmed.to_string(),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(GraphError::Parse { line: lineno, content: trimmed.to_string() });
        }
        let ui = intern(u, &mut ids, lineno)?;
        let vi = intern(v, &mut ids, lineno)?;
        edges.push((ui, vi));
    }
    CsrGraph::from_edges(ids.len(), edges)
}

/// Writes `g` as a SNAP-style edge list with a header comment. Each
/// undirected edge appears once as `min\tmax`.
///
/// A `&mut` reference may be passed for the writer, matching the standard
/// library's blanket `Write` impl for `&mut W`.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_snap_edges<W: Write>(g: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# Undirected graph: |V| = {}, |E| = {}",
        g.vertex_count(),
        g.edge_count()
    )?;
    writeln!(writer, "# FromNodeId\tToNodeId")?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

/// Reads a MatrixMarket `coordinate` file as an undirected graph — the
/// other common distribution format for the paper's datasets (SuiteSparse
/// mirrors the SNAP graphs as `.mtx`).
///
/// Supports the `matrix coordinate pattern|integer|real
/// general|symmetric` headers; entry values (if any) are ignored, since
/// an adjacency matrix only needs the coordinates. Indices are 1-based
/// per the format and converted to dense 0-based ids.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed headers or entries and
/// [`GraphError::Io`] for read failures.
///
/// # Example
///
/// ```
/// use tcim_graph::io::read_matrix_market;
///
/// let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
/// let g = read_matrix_market(text.as_bytes())?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrGraph> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Header line: %%MatrixMarket matrix coordinate <field> <symmetry>.
    let (_, header) = lines
        .next()
        .ok_or_else(|| GraphError::Parse { line: 1, content: "<empty file>".to_string() })?;
    let header = header?;
    let lowered = header.to_ascii_lowercase();
    if !lowered.starts_with("%%matrixmarket matrix coordinate") {
        return Err(GraphError::Parse { line: 1, content: header });
    }

    // Size line: first non-comment line holds "rows cols entries".
    let mut dims: Option<(usize, u64)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (lineno, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err =
            || GraphError::Parse { line: lineno + 1, content: trimmed.to_string() };
        match dims {
            None => {
                let rows: usize =
                    parts.next().and_then(|t| t.parse().ok()).ok_or_else(parse_err)?;
                let cols: usize =
                    parts.next().and_then(|t| t.parse().ok()).ok_or_else(parse_err)?;
                let entries: u64 =
                    parts.next().and_then(|t| t.parse().ok()).ok_or_else(parse_err)?;
                dims = Some((rows.max(cols), entries));
            }
            Some(_) => {
                let i: u64 =
                    parts.next().and_then(|t| t.parse().ok()).ok_or_else(parse_err)?;
                let j: u64 =
                    parts.next().and_then(|t| t.parse().ok()).ok_or_else(parse_err)?;
                // Optional value column is ignored; 1-based → 0-based.
                if i == 0 || j == 0 {
                    return Err(parse_err());
                }
                edges.push((i as u32 - 1, j as u32 - 1));
            }
        }
    }
    let (n, _) = dims.ok_or_else(|| GraphError::Parse {
        line: 2,
        content: "<missing size line>".to_string(),
    })?;
    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "# comment\n\n  3   7 \n7\t9\n# trailing\n9 3\n";
        let g = read_snap_edges(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn remaps_sparse_ids_densely() {
        let text = "1000000 2000000\n2000000 3000000\n";
        let g = read_snap_edges(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["abc def\n", "1\n", "1 2 3\n", "1 x\n"] {
            let err = read_snap_edges(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, GraphError::Parse { line: 1, .. }), "input {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_the_right_line_number() {
        let text = "# header\n1 2\n\n3 4\nbogus line\n";
        match read_snap_edges(text.as_bytes()).unwrap_err() {
            GraphError::Parse { line, content } => {
                assert_eq!(line, 5);
                assert_eq!(content, "bogus line");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn path_convenience_reads_files() {
        let mut path = std::env::temp_dir();
        path.push(format!("tcim-io-test-{}.txt", std::process::id()));
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let g = read_snap_edges_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(read_snap_edges_path("/nonexistent/tcim-missing.txt").is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = crate::generators::classic::fig2_example();
        let mut buf = Vec::new();
        write_snap_edges(&g, &mut buf).unwrap();
        let parsed = read_snap_edges(buf.as_slice()).unwrap();
        assert_eq!(parsed.vertex_count(), g.vertex_count());
        assert_eq!(parsed.edge_count(), g.edge_count());
        // Edge-by-edge identical because ids appear in ascending order.
        assert_eq!(parsed.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_snap_edges("".as_bytes()).unwrap();
        assert!(g.is_empty());
        let g = read_snap_edges("# only comments\n".as_bytes()).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn self_loops_dropped_like_snap_preprocessing() {
        let g = read_snap_edges("5 5\n5 6\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn matrix_market_pattern_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n4 4 3\n2 1\n3 1\n4 3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(2, 3));
    }

    #[test]
    fn matrix_market_with_values_ignores_them() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 0.5\n2 3 1.5\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market("".as_bytes()).is_err());
    }
}
