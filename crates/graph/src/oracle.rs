//! Naive reference oracles for motif queries: k-truss decomposition
//! and 4-clique counting by direct definition-chasing enumeration.
//!
//! The accelerated paths (`tcim-core`'s peeling engine and chained-AND
//! clique kernels) are subtle: peeling is iterative and order-
//! sensitive, and 4-clique attribution double-counts easily. These
//! oracles are the differential anchor — deliberately slow, obviously
//! correct, and shared by every integration test:
//!
//! * [`trussness`] — per-edge trussness by **repeated support
//!   recomputation**: at each level `k`, every live edge's support is
//!   recounted from scratch over the surviving edge set before peeling,
//!   so no incremental bookkeeping can hide a bug.
//! * [`ktruss_edges`] — the maximal k-truss edge set, filtered from
//!   the trussness map.
//! * [`four_cliques`] — total and per-vertex 4-clique counts by
//!   quadruple enumeration anchored at each clique's two smallest
//!   vertices, so each `K_4` is visited exactly once.
//!
//! # Golden fixtures
//!
//! The closed-form graphs of [`generators::classic`] have hand-derived
//! truth, doc-tested here so the oracle itself is pinned:
//!
//! The paper's Fig. 2 graph (two triangles sharing edge `1–2`): every
//! edge lies in a triangle whose other two edges survive with it up to
//! level 3, and none survives level 4 — all five edges have trussness
//! exactly 3, and the 4-vertex graph has no 4-clique.
//!
//! ```
//! use tcim_graph::generators::classic;
//! use tcim_graph::oracle;
//!
//! let g = classic::fig2_example();
//! let truss = oracle::trussness(&g);
//! assert_eq!(truss.len(), 5);
//! assert!(truss.iter().all(|&(_, _, t)| t == 3));
//! assert_eq!(oracle::ktruss_edges(&g, 3).len(), 5);
//! assert!(oracle::ktruss_edges(&g, 4).is_empty());
//! assert_eq!(oracle::four_cliques(&g), (0, vec![0, 0, 0, 0]));
//! ```
//!
//! A wheel: rim edges have support 1, spokes support 2, but peeling at
//! level 4 removes every rim edge (support 1 < 2) and the spokes
//! cascade to support 0 — the whole wheel is a 3-truss and the 4-truss
//! is empty. The wheel contains no 4-clique (any four vertices include
//! two non-adjacent rim vertices).
//!
//! ```
//! use tcim_graph::generators::classic;
//! use tcim_graph::oracle;
//!
//! let g = classic::wheel(8); // hub + 7 rim vertices
//! let truss = oracle::trussness(&g);
//! assert!(truss.iter().all(|&(_, _, t)| t == 3));
//! assert!(oracle::ktruss_edges(&g, 4).is_empty());
//! assert_eq!(oracle::four_cliques(&g).0, 0);
//! ```
//!
//! Complete graphs: in `K_n` every edge has support `n − 2`, the whole
//! graph is an n-truss, and 4-clique counts are closed-form — `C(n,4)`
//! total, `C(n−1,3)` per vertex. For `K_5`: trussness 5 everywhere,
//! `C(5,4) = 5` cliques, `C(4,3) = 4` per vertex. For `K_6`:
//! `C(6,4) = 15` total, `C(5,3) = 10` per vertex.
//!
//! ```
//! use tcim_graph::generators::classic;
//! use tcim_graph::oracle;
//!
//! let k5 = classic::complete(5);
//! assert!(oracle::trussness(&k5).iter().all(|&(_, _, t)| t == 5));
//! assert_eq!(oracle::four_cliques(&k5), (5, vec![4; 5]));
//!
//! let k6 = classic::complete(6);
//! assert!(oracle::trussness(&k6).iter().all(|&(_, _, t)| t == 6));
//! assert_eq!(oracle::four_cliques(&k6), (15, vec![10; 6]));
//! ```
//!
//! [`generators::classic`]: crate::generators::classic

use std::collections::BTreeMap;

use crate::csr::CsrGraph;

/// Counts the common live neighbours of `u` and `v` over a mutable
/// adjacency snapshot (sorted neighbour lists) — the support of edge
/// `(u, v)` in the surviving subgraph.
fn live_support(adj: &[Vec<u32>], u: u32, v: u32) -> u64 {
    let (mut a, mut b) = (adj[u as usize].iter(), adj[v as usize].iter());
    let (mut x, mut y) = (a.next(), b.next());
    let mut count = 0;
    while let (Some(&p), Some(&q)) = (x, y) {
        match p.cmp(&q) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                count += 1;
                x = a.next();
                y = b.next();
            }
        }
    }
    count
}

/// Per-edge trussness by repeated support recomputation: the largest
/// `k` such that the edge belongs to the k-truss (the maximal subgraph
/// where every edge closes at least `k − 2` triangles inside it).
///
/// Edges in no triangle have trussness 2 by convention. Returned as
/// `(u, v, trussness)` triples with `u < v`, ascending.
pub fn trussness(g: &CsrGraph) -> Vec<(u32, u32, u32)> {
    let mut adj: Vec<Vec<u32>> = g.vertices().map(|v| g.neighbors(v).to_vec()).collect();
    let mut live: Vec<(u32, u32)> = g.edges().collect();
    live.sort_unstable();
    let mut truss: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let mut k = 3u32;
    while !live.is_empty() {
        // Peel to a fixpoint at this level, recomputing every support
        // from scratch each pass — the slow, obviously-correct form.
        loop {
            let peel: Vec<(u32, u32)> = live
                .iter()
                .copied()
                .filter(|&(u, v)| live_support(&adj, u, v) < u64::from(k - 2))
                .collect();
            if peel.is_empty() {
                break;
            }
            for &(u, v) in &peel {
                truss.insert((u, v), k - 1);
                adj[u as usize].retain(|&w| w != v);
                adj[v as usize].retain(|&w| w != u);
            }
            live.retain(|e| !truss.contains_key(e));
        }
        k += 1;
    }
    truss.into_iter().map(|((u, v), t)| (u, v, t)).collect()
}

/// The maximal k-truss edge set: edges with trussness at least `k`,
/// as `(u, v)` pairs with `u < v`, ascending. For `k ≤ 2` this is the
/// whole edge set (every edge is trivially in the 2-truss).
pub fn ktruss_edges(g: &CsrGraph, k: u32) -> Vec<(u32, u32)> {
    trussness(g).into_iter().filter(|&(_, _, t)| t >= k).map(|(u, v, _)| (u, v)).collect()
}

/// Counts 4-cliques by quadruple enumeration: `(total, per_vertex)`,
/// where `per_vertex[v]` is the number of 4-cliques containing `v`
/// (so `Σ per_vertex = 4 · total`).
///
/// Each clique `{a < b < c < d}` is found exactly once: anchored at
/// its smallest edge `(a, b)`, scanning common-neighbour pairs
/// `c < d` above `b` and testing the closing edge `(c, d)`.
pub fn four_cliques(g: &CsrGraph) -> (u64, Vec<u64>) {
    let n = g.vertex_count();
    let mut per_vertex = vec![0u64; n];
    let mut total = 0u64;
    for (a, b) in g.edges() {
        // Common neighbours of the anchor edge, above both endpoints.
        let common: Vec<u32> = {
            let (na, nb) = (g.neighbors(a), g.neighbors(b));
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < na.len() && j < nb.len() {
                match na[i].cmp(&nb[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if na[i] > b {
                            out.push(na[i]);
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            out
        };
        for (ci, &c) in common.iter().enumerate() {
            for &d in &common[ci + 1..] {
                if g.has_edge(c, d) {
                    total += 1;
                    per_vertex[a as usize] += 1;
                    per_vertex[b as usize] += 1;
                    per_vertex[c as usize] += 1;
                    per_vertex[d as usize] += 1;
                }
            }
        }
    }
    (total, per_vertex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;
    use crate::generators::{gnm, watts_strogatz};

    #[test]
    fn triangle_free_graphs_have_trussness_two_everywhere() {
        for g in [classic::star(8), classic::path(9), classic::complete_bipartite(3, 4)] {
            let truss = trussness(&g);
            assert_eq!(truss.len(), g.edge_count());
            assert!(truss.iter().all(|&(_, _, t)| t == 2), "{truss:?}");
            assert_eq!(four_cliques(&g).0, 0);
        }
    }

    #[test]
    fn complete_graph_trussness_is_n() {
        for n in 3..8usize {
            let g = classic::complete(n);
            assert!(trussness(&g).iter().all(|&(_, _, t)| t == n as u32));
        }
    }

    #[test]
    fn complete_graph_four_cliques_are_closed_form() {
        // C(n,4) total, C(n-1,3) per vertex.
        let choose =
            |n: u64, k: u64| -> u64 { (1..=k).fold(1u64, |acc, i| acc * (n - k + i) / i) };
        for n in 4..9u64 {
            let (total, per_vertex) = four_cliques(&classic::complete(n as usize));
            assert_eq!(total, choose(n, 4));
            assert!(per_vertex.iter().all(|&c| c == choose(n - 1, 3)));
            assert_eq!(per_vertex.iter().sum::<u64>(), 4 * total);
        }
    }

    #[test]
    fn ktruss_membership_is_monotone_in_k() {
        let g = gnm(60, 300, 3).unwrap();
        let mut prev = ktruss_edges(&g, 2);
        assert_eq!(prev.len(), g.edge_count());
        for k in 3..8 {
            let cur = ktruss_edges(&g, k);
            assert!(cur.iter().all(|e| prev.contains(e)), "k={k} not nested");
            prev = cur;
        }
    }

    #[test]
    fn ktruss_edges_satisfy_the_truss_condition() {
        // Every edge of the k-truss must close >= k-2 triangles INSIDE
        // the truss — the defining property, checked directly.
        let g = watts_strogatz(40, 6, 0.2, 9).unwrap();
        for k in 3..6u32 {
            let members = ktruss_edges(&g, k);
            let adj = {
                let mut adj: Vec<Vec<u32>> = vec![Vec::new(); g.vertex_count()];
                for &(u, v) in &members {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
                adj.iter_mut().for_each(|l| l.sort_unstable());
                adj
            };
            for &(u, v) in &members {
                assert!(
                    live_support(&adj, u, v) >= u64::from(k - 2),
                    "edge ({u},{v}) violates the {k}-truss condition"
                );
            }
        }
    }

    #[test]
    fn per_vertex_four_cliques_sum_to_four_times_total() {
        let g = gnm(50, 400, 7).unwrap();
        let (total, per_vertex) = four_cliques(&g);
        assert!(total > 0, "a dense gnm(50,400) surely has a 4-clique");
        assert_eq!(per_vertex.iter().sum::<u64>(), 4 * total);
    }
}
