//! Error type for graph construction and parsing.

use std::error::Error;
use std::fmt;
use std::io;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised while building, generating or parsing graphs.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id was at or beyond the declared vertex count.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u64,
        /// The declared vertex count.
        count: u64,
    },
    /// A generator was asked for an impossible configuration, e.g. more
    /// edges than a simple graph on `n` vertices can hold.
    InvalidParameter {
        /// Human-readable description of the rejected parameter.
        reason: String,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// The unparseable content.
        content: String,
    },
    /// An underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, count } => {
                write!(f, "vertex {vertex} out of bounds for graph with {count} vertices")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Parse { line, content } => {
                write!(f, "unparseable edge list at line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfBounds { vertex: 7, count: 5 };
        assert_eq!(e.to_string(), "vertex 7 out of bounds for graph with 5 vertices");
        let e = GraphError::Parse { line: 3, content: "a b".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_is_source() {
        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
