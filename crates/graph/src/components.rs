//! Connected components and the largest-component extraction that SNAP
//! datasets conventionally apply (the paper's `com-*` graphs are the
//! largest connected components of their crawls).

use crate::csr::CsrGraph;

/// Connected-component labelling of an undirected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = component id of vertex `v` (ids are dense, 0-based,
    /// assigned in order of first discovery).
    labels: Vec<u32>,
    /// Vertices per component, indexed by component id.
    sizes: Vec<usize>,
}

impl Components {
    /// Labels the components of `g` with an iterative BFS.
    pub fn find(g: &CsrGraph) -> Self {
        let n = g.vertex_count();
        let mut labels = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n as u32 {
            if labels[start as usize] != u32::MAX {
                continue;
            }
            let id = sizes.len() as u32;
            let mut size = 0usize;
            labels[start as usize] = id;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                size += 1;
                for &w in g.neighbors(v) {
                    if labels[w as usize] == u32::MAX {
                        labels[w as usize] = id;
                        queue.push_back(w);
                    }
                }
            }
            sizes.push(size);
        }
        Components { labels, sizes }
    }

    /// Number of components (an empty graph has zero).
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of bounds.
    pub fn label(&self, v: u32) -> u32 {
        self.labels[v as usize]
    }

    /// Vertices in component `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of bounds.
    pub fn size(&self, id: u32) -> usize {
        self.sizes[id as usize]
    }

    /// Id of the largest component, or `None` for an empty graph.
    pub fn largest(&self) -> Option<u32> {
        (0..self.sizes.len() as u32).max_by_key(|&id| self.sizes[id as usize])
    }
}

/// Extracts the largest connected component of `g` as a new graph with
/// densely renumbered vertices (discovery order) — the conventional SNAP
/// preprocessing step.
///
/// Returns an empty graph when `g` is empty.
///
/// # Example
///
/// ```
/// use tcim_graph::components::largest_component;
/// use tcim_graph::CsrGraph;
///
/// // A triangle plus an isolated edge.
/// let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4)])?;
/// let lcc = largest_component(&g);
/// assert_eq!(lcc.vertex_count(), 3);
/// assert_eq!(lcc.edge_count(), 3);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
pub fn largest_component(g: &CsrGraph) -> CsrGraph {
    let components = Components::find(g);
    let Some(target) = components.largest() else {
        return CsrGraph::default();
    };
    // Dense renumbering of the surviving vertices.
    let mut new_id = vec![u32::MAX; g.vertex_count()];
    let mut next = 0u32;
    for v in g.vertices() {
        if components.label(v) == target {
            new_id[v as usize] = next;
            next += 1;
        }
    }
    let edges = g
        .edges()
        .filter(|&(u, _)| components.label(u) == target)
        .map(|(u, v)| (new_id[u as usize], new_id[v as usize]));
    CsrGraph::from_edges(next as usize, edges).expect("renumbered ids are dense")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn connected_graph_is_one_component() {
        let g = classic::wheel(9);
        let c = Components::find(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.size(0), 9);
        assert_eq!(c.largest(), Some(0));
    }

    #[test]
    fn disjoint_pieces_are_separated() {
        // Triangle (0,1,2), edge (3,4), isolated vertex 5.
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let c = Components::find(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.label(0), c.label(2));
        assert_ne!(c.label(0), c.label(3));
        assert_eq!(c.size(c.label(5)), 1);
    }

    #[test]
    fn largest_component_extraction() {
        let g = CsrGraph::from_edges(7, [(0, 1), (1, 2), (2, 0), (0, 3), (5, 6)]).unwrap();
        let lcc = largest_component(&g);
        assert_eq!(lcc.vertex_count(), 4);
        assert_eq!(lcc.edge_count(), 4);
        // Triangle count is preserved inside the component.
        let mut found = 0;
        for u in lcc.vertices() {
            for &v in lcc.neighbors(u) {
                for &w in lcc.neighbors(v) {
                    if v > u && w > v && lcc.has_edge(u, w) {
                        found += 1;
                    }
                }
            }
        }
        assert_eq!(found, 1);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        let c = Components::find(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
        assert!(largest_component(&g).is_empty());
    }

    #[test]
    fn isolated_vertices_form_singletons() {
        let g = CsrGraph::from_edges(4, [(1, 2)]).unwrap();
        let c = Components::find(&g);
        assert_eq!(c.count(), 3);
        let lcc = largest_component(&g);
        assert_eq!(lcc.vertex_count(), 2);
        assert_eq!(lcc.edge_count(), 1);
    }
}
