//! Degree statistics used by the dataset catalog and experiment reports.

use std::fmt;

/// Summary statistics over a graph's degree sequence.
///
/// # Example
///
/// ```
/// use tcim_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)])?;
/// let s = g.degree_stats();
/// assert_eq!(s.max, 3);
/// assert_eq!(s.min, 1);
/// assert!((s.mean - 1.5).abs() < 1e-12);
/// # Ok::<(), tcim_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DegreeStats {
    /// Smallest degree (0 for an empty graph).
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of vertices with degree zero.
    pub isolated: usize,
    /// Number of vertices.
    pub vertices: usize,
}

impl DegreeStats {
    /// Computes statistics from a degree sequence.
    pub fn from_degrees<I>(degrees: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut isolated = 0usize;
        let mut vertices = 0usize;
        for d in degrees {
            min = min.min(d);
            max = max.max(d);
            sum += d;
            vertices += 1;
            if d == 0 {
                isolated += 1;
            }
        }
        if vertices == 0 {
            min = 0;
        }
        DegreeStats {
            min,
            max,
            mean: if vertices == 0 { 0.0 } else { sum as f64 / vertices as f64 },
            isolated,
            vertices,
        }
    }
}

impl fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degrees: min {} / mean {:.2} / max {} ({} isolated of {})",
            self.min, self.mean, self.max, self.isolated, self.vertices
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::from_degrees([]);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.vertices, 0);
    }

    #[test]
    fn simple_sequence() {
        let s = DegreeStats::from_degrees([0, 2, 4]);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.vertices, 3);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = DegreeStats::from_degrees([1, 2]);
        let text = s.to_string();
        assert!(text.contains("min 1"));
        assert!(text.contains("max 2"));
    }
}
