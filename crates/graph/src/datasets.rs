//! The paper's Table II dataset catalog with synthetic stand-ins.
//!
//! The nine SNAP graphs the paper evaluates are not redistributable here,
//! so each catalog entry records the published `|V|`, `|E|` and triangle
//! count *and* carries a family-matched synthetic recipe
//! ([`Dataset::synthesize`]). The recipes match the quantities that drive
//! TCIM's behaviour — size, degree distribution, and triangle density
//! regime — as argued in DESIGN.md §2:
//!
//! * **Social/web-like graphs** (`ego-facebook`, `email-enron`,
//!   `com-youtube`, `com-lj`): Barabási–Albert preferential attachment for
//!   the heavy tail, plus a triadic-closure pass for realistic clustering.
//! * **Collaboration/co-purchase graphs** (`com-amazon`, `com-dblp`):
//!   the same recipe with a milder tail (smaller attachment count).
//! * **Road networks** (`roadNet-PA/TX/CA`): perturbed planar grids with
//!   sparse diagonals — bounded degree and very few triangles.
//!
//! Real SNAP files can still be loaded with [`crate::io::read_snap_edges`]
//! and produce identical downstream statistics code paths.

use rand::Rng;

use crate::csr::CsrGraph;
use crate::error::Result;
use crate::generators::{barabasi_albert, rng_from_seed, road_grid};

/// Structural family of a dataset, selecting the synthesis recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GraphFamily {
    /// Heavy-tailed social / communication network, high clustering.
    Social,
    /// Collaboration or co-purchase network: heavy tail, moderate degree.
    Collaboration,
    /// Street network: bounded degree, near-planar, few triangles.
    Road,
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataset {
    /// SNAP dataset name as printed in the paper.
    pub name: &'static str,
    /// Published vertex count.
    pub vertices: u64,
    /// Published edge count.
    pub edges: u64,
    /// Published triangle count.
    pub triangles: u64,
    /// Structural family driving the synthetic recipe.
    pub family: GraphFamily,
}

/// The nine rows of Table II, in paper order.
pub const TABLE_II: [Dataset; 9] = [
    Dataset {
        name: "ego-facebook",
        vertices: 4_039,
        edges: 88_234,
        triangles: 1_612_010,
        family: GraphFamily::Social,
    },
    Dataset {
        name: "email-enron",
        vertices: 36_692,
        edges: 183_831,
        triangles: 727_044,
        family: GraphFamily::Social,
    },
    Dataset {
        name: "com-amazon",
        vertices: 334_863,
        edges: 925_872,
        triangles: 667_129,
        family: GraphFamily::Collaboration,
    },
    Dataset {
        name: "com-dblp",
        vertices: 317_080,
        edges: 1_049_866,
        triangles: 2_224_385,
        family: GraphFamily::Collaboration,
    },
    Dataset {
        name: "com-youtube",
        vertices: 1_134_890,
        edges: 2_987_624,
        triangles: 3_056_386,
        family: GraphFamily::Social,
    },
    Dataset {
        name: "roadnet-pa",
        vertices: 1_088_092,
        edges: 1_541_898,
        triangles: 67_150,
        family: GraphFamily::Road,
    },
    Dataset {
        name: "roadnet-tx",
        vertices: 1_379_917,
        edges: 1_921_660,
        triangles: 82_869,
        family: GraphFamily::Road,
    },
    Dataset {
        name: "roadnet-ca",
        vertices: 1_965_206,
        edges: 2_766_607,
        triangles: 120_676,
        family: GraphFamily::Road,
    },
    Dataset {
        name: "com-lj",
        vertices: 3_997_962,
        edges: 34_681_189,
        triangles: 177_820_130,
        family: GraphFamily::Social,
    },
];

impl Dataset {
    /// Looks up a Table II row by its (case-insensitive) paper name.
    ///
    /// # Example
    ///
    /// ```
    /// use tcim_graph::datasets::Dataset;
    ///
    /// let d = Dataset::by_name("roadNet-PA").unwrap();
    /// assert_eq!(d.vertices, 1_088_092);
    /// ```
    pub fn by_name(name: &str) -> Option<&'static Dataset> {
        TABLE_II.iter().find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Target vertex count after applying `scale` (≥ 64 so that tiny scales
    /// still produce meaningful graphs).
    pub fn scaled_vertices(&self, scale: f64) -> usize {
        (((self.vertices as f64) * scale).round() as usize).max(64)
    }

    /// Target edge count after applying `scale`.
    pub fn scaled_edges(&self, scale: f64) -> usize {
        (((self.edges as f64) * scale).round() as usize).max(64)
    }

    /// Generates the synthetic stand-in at `scale` (1.0 = full published
    /// size) with a deterministic `seed`.
    ///
    /// The recipe preserves the `|E| / |V|` ratio of the published graph
    /// and its family's triangle-density regime. The triangle count of the
    /// stand-in is *measured*, never assumed, by downstream code.
    ///
    /// # Errors
    ///
    /// Propagates generator parameter errors (cannot occur for catalog
    /// entries with `scale > 0`).
    pub fn synthesize(&self, scale: f64, seed: u64) -> Result<CsrGraph> {
        let n = self.scaled_vertices(scale);
        let m_target = self.scaled_edges(scale);
        let ratio = m_target as f64 / n as f64;

        let g = match self.family {
            GraphFamily::Social | GraphFamily::Collaboration => {
                // Build the preferential-attachment skeleton with a reduced
                // attachment count (floor, not round) and spend the rest of
                // the edge budget on triadic closure: real SNAP
                // social/collaboration graphs are strongly clustered, and
                // that locality is what the paper's data reuse exploits.
                let closure_share = match self.family {
                    GraphFamily::Social => 0.30,
                    _ => 0.35,
                };
                let m_attach = ((ratio * (1.0 - closure_share)).floor() as usize).max(1);
                let g = barabasi_albert(n, m_attach.min(n - 1), seed)?;
                let extra = m_target.saturating_sub(g.edge_count());
                add_triadic_closure(&g, extra, seed ^ 0x9E37_79B9_7F4A_7C15)
            }
            GraphFamily::Road => {
                // Square grid sized to n; keep-probability tuned so the
                // expected edge count matches the target: a full grid has
                // ~2n edges.
                let side = (n as f64).sqrt().ceil() as usize;
                let keep = (ratio / 2.0).clamp(0.05, 1.0);
                road_grid(side, side.max(2), keep, 0.02, seed)?
            }
        };
        // SNAP ids follow crawl/collection order, so neighbours sit close
        // together in id space; that locality concentrates adjacency bits
        // into few slices (the paper's 0.006–7 % valid-slice range relies
        // on it). A BFS relabelling reproduces the same effect.
        Ok(bfs_relabel(&g))
    }
}

/// Relabels vertices in BFS order from the highest-degree vertex,
/// visiting neighbours in ascending id; unreached components follow in id
/// order. This reproduces the neighbour-id locality of crawled datasets.
fn bfs_relabel(g: &CsrGraph) -> CsrGraph {
    let n = g.vertex_count();
    if n == 0 {
        return g.clone();
    }
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let start = g
        .vertices()
        .max_by_key(|&v| g.degree(v))
        .expect("non-empty graph has a max-degree vertex");

    let mut roots = std::iter::once(start).chain(g.vertices());
    while order.len() < n {
        let root = roots.next().expect("every vertex is eventually a root");
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    let mut perm = vec![0u32; n];
    for (new_id, &old_id) in order.iter().enumerate() {
        perm[old_id as usize] = new_id as u32;
    }
    g.relabel(&perm)
}

/// Adds up to `extra` triadic-closure edges: sample a vertex with at least
/// two neighbours and connect two of them. This is the standard mechanism
/// for raising the clustering coefficient without disturbing the degree
/// tail much.
fn add_triadic_closure(g: &CsrGraph, extra: usize, seed: u64) -> CsrGraph {
    if extra == 0 || g.vertex_count() == 0 {
        return g.clone();
    }
    let mut rng = rng_from_seed(seed);
    let n = g.vertex_count() as u32;
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = extra.saturating_mul(20).max(1024);
    while added < extra && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let nbrs = g.neighbors(u);
        if nbrs.len() < 2 {
            continue;
        }
        let a = nbrs[rng.gen_range(0..nbrs.len())];
        let b = nbrs[rng.gen_range(0..nbrs.len())];
        if a == b {
            continue;
        }
        edges.push((a.min(b), a.max(b)));
        added += 1;
    }
    // The CSR constructor deduplicates, so colliding closures just shrink
    // the realised extra-edge count — acceptable for a synthetic stand-in.
    CsrGraph::from_edges(g.vertex_count(), edges).expect("closure edges stay in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_totals() {
        assert_eq!(TABLE_II.len(), 9);
        let total_edges: u64 = TABLE_II.iter().map(|d| d.edges).sum();
        // Spot values straight from Table II.
        assert_eq!(Dataset::by_name("ego-facebook").unwrap().triangles, 1_612_010);
        assert_eq!(Dataset::by_name("com-lj").unwrap().edges, 34_681_189);
        assert!(total_edges > 46_000_000);
    }

    #[test]
    fn by_name_is_case_insensitive_and_total() {
        assert!(Dataset::by_name("ROADNET-CA").is_some());
        assert!(Dataset::by_name("no-such-graph").is_none());
        for d in &TABLE_II {
            assert_eq!(Dataset::by_name(d.name).unwrap().name, d.name);
        }
    }

    #[test]
    fn scaled_sizes_clamp_to_minimum() {
        let d = Dataset::by_name("ego-facebook").unwrap();
        assert_eq!(d.scaled_vertices(1e-9), 64);
        assert_eq!(d.scaled_vertices(1.0), 4_039);
    }

    #[test]
    fn social_stand_in_matches_size_and_ratio() {
        let d = Dataset::by_name("ego-facebook").unwrap();
        let g = d.synthesize(0.25, 42).unwrap();
        let n = d.scaled_vertices(0.25);
        assert_eq!(g.vertex_count(), n);
        // Edge ratio within 30 % of the published ratio.
        let want = d.edges as f64 / d.vertices as f64;
        let got = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!((got - want).abs() / want < 0.3, "got {got}, want {want}");
    }

    #[test]
    fn road_stand_in_is_bounded_degree() {
        let d = Dataset::by_name("roadnet-pa").unwrap();
        let g = d.synthesize(0.01, 42).unwrap();
        let stats = g.degree_stats();
        assert!(stats.max <= 8, "{stats}");
        assert!(stats.mean < 3.5, "{stats}");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let d = Dataset::by_name("com-amazon").unwrap();
        assert_eq!(d.synthesize(0.02, 7).unwrap(), d.synthesize(0.02, 7).unwrap());
        assert_ne!(d.synthesize(0.02, 7).unwrap(), d.synthesize(0.02, 8).unwrap());
    }

    #[test]
    fn bfs_relabel_improves_id_locality() {
        // A shuffled ring has distant neighbour ids; BFS relabelling must
        // bring the mean |u - v| gap down near 1.
        let n = 256u32;
        let edges: Vec<(u32, u32)> =
            (0..n).map(|i| ((i * 37) % n, ((i + 1) * 37) % n)).collect();
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let gap = |g: &CsrGraph| -> f64 {
            g.edges().map(|(u, v)| (v - u) as f64).sum::<f64>() / g.edge_count() as f64
        };
        let relabelled = bfs_relabel(&g);
        assert_eq!(relabelled.edge_count(), g.edge_count());
        assert!(
            gap(&relabelled) < gap(&g) / 4.0,
            "gap before {} after {}",
            gap(&g),
            gap(&relabelled)
        );
    }

    #[test]
    fn closure_pass_increases_wedge_closure() {
        let base = barabasi_albert(500, 4, 3).unwrap();
        let closed = add_triadic_closure(&base, 300, 11);
        assert!(closed.edge_count() > base.edge_count());
        assert_eq!(closed.vertex_count(), base.vertex_count());
    }

    #[test]
    fn closure_zero_is_identity() {
        let base = barabasi_albert(100, 3, 3).unwrap();
        assert_eq!(add_triadic_closure(&base, 0, 1), base);
    }
}
