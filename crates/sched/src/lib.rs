//! Multi-array scheduling and parallel execution runtime for the TCIM
//! reproduction.
//!
//! The TCIM paper (Wang et al., DAC 2020) derives its speedup from
//! mapping bit-sliced row/column intersections onto many independent
//! MRAM computational subarrays, but the serial engine in `tcim-arch`
//! approximates that parallelism by dividing total work uniformly over
//! the subarray count. This crate replaces the approximation with an
//! explicit runtime, sitting between `tcim-bitmatrix` slicing and the
//! `tcim-arch` engine:
//!
//! * **Work decomposition** ([`jobs`]) — one schedulable [`RowJob`] per
//!   non-empty matrix row, priced via the engine's
//!   [`SliceCostModel`](tcim_arch::SliceCostModel) hooks.
//! * **Placement policies** ([`PlacementPolicy`]) —
//!   [`RoundRobin`](PlacementPolicy::RoundRobin) dealing,
//!   popcount-load-balanced greedy LPT
//!   ([`LoadBalanced`](PlacementPolicy::LoadBalanced)), and a
//!   [`ReuseAware`](PlacementPolicy::ReuseAware) policy with a per-array
//!   LRU row-buffer residency model so jobs sharing column slices land
//!   on arrays that already hold them — cf. the load-balancing findings
//!   of Asquini et al. (2025) for triangle counting on real PIM systems.
//! * **Inter-array aggregation** ([`ScheduledReport`]) — critical-path
//!   latency (serial host dispatch + slowest array), per-array
//!   utilization, and the load-imbalance factor, instead of a serial
//!   sum.
//! * **Batch delta jobs** ([`delta`]) — placement of the per-update
//!   AND + BitCount kernels a dynamic-graph batch (`tcim-stream`)
//!   produces: tiny, independent, residency-free jobs priced by the
//!   same cost model and balanced by the same policies.
//! * **Batch execution** ([`ScheduledRun`], [`BatchRunner`]) —
//!   independent per-array work fans out over scoped host threads and
//!   partial triangle counts merge deterministically in array order.
//!
//! Functional correctness is independent of scheduling by construction:
//! every policy executes the identical AND + BitCount dataflow per edge,
//! so the scheduled count always equals the serial engine's (property
//! tests in `tests/properties.rs` pin this, alongside the
//! every-slice-placed-exactly-once invariant).
//!
//! # Example
//!
//! ```
//! use tcim_arch::{PimConfig, PimEngine};
//! use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};
//! use tcim_sched::{PlacementPolicy, SchedPolicy, ScheduledRun};
//!
//! // The paper's Fig. 2 graph: 2 triangles.
//! let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
//! for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
//!     b.add_edge(u, v)?;
//! }
//! let matrix = b.build();
//!
//! let engine = PimEngine::new(&PimConfig::default())?;
//! let policy = SchedPolicy::with_arrays(4).placement(PlacementPolicy::LoadBalanced);
//! let report = ScheduledRun::plan(&engine, &matrix, &policy)?.execute();
//! assert_eq!(report.triangles, 2);
//! assert!(report.imbalance >= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod delta;
mod error;
mod executor;
pub mod jobs;
mod placement;
mod policy;
mod report;
mod runner;

pub use delta::{plan_deltas, DeltaJob, DeltaPlan};
pub use error::{Result, SchedError};
pub use jobs::RowJob;
pub use placement::{ArrayAssignment, Placement};
pub use policy::{PlacementPolicy, SchedPolicy};
pub use report::{ArrayReport, ScheduledReport};
pub use runner::{parallel_map_indexed, AttributedScheduledRun, BatchRunner, ScheduledRun};
