//! The batch job API: planned runs ([`ScheduledRun`]) and multi-graph
//! fan-out ([`BatchRunner`]), executed over host worker threads with a
//! deterministic merge.
//!
//! Host-side parallelism uses `std::thread::scope` worker fan-out (the
//! build environment has no registry access, so a rayon dependency is
//! deliberately avoided; scoped threads give the same fork-join shape).
//! Determinism: per-array results are merged in array order and batch
//! results in submission order, so the reported counts and statistics
//! are independent of thread interleaving.

use std::time::Instant;

use tcim_arch::{PimEngine, SliceCostModel};
use tcim_bitmatrix::SlicedMatrix;

use std::collections::BTreeMap;

use crate::error::{Result, SchedError};
use crate::executor::{run_array, ArrayRun, Attribution};
use crate::jobs::{decompose, RowJob};
use crate::placement::Placement;
use crate::policy::SchedPolicy;
use crate::report::ScheduledReport;

/// A scheduled run executed with triangle attribution: the usual
/// [`ScheduledReport`] plus the attributed quantities, merged
/// deterministically from each array's partial vectors (array order, so
/// results are independent of host-thread interleaving).
///
/// All ids are matrix ids; callers that relabelled vertices map them
/// back through their orientation.
#[derive(Debug, Clone)]
pub struct AttributedScheduledRun {
    /// The scheduled report (triangles, per-array statistics including
    /// the attribution's result readouts, critical path, energy).
    pub report: ScheduledReport,
    /// Triangles each vertex participates in; sums to `3 × triangles`.
    pub per_vertex: Vec<u64>,
    /// Triangle support per arc `(i, j)`, ascending, covering every arc
    /// that participates in at least one triangle. Present only when
    /// support accumulation was requested.
    pub support: Option<Vec<(u32, u32, u64)>>,
}

/// A planned scheduled run: a matrix bound to a placement, ready to
/// execute (possibly several times).
#[derive(Debug)]
pub struct ScheduledRun<'a> {
    engine: &'a PimEngine,
    matrix: &'a SlicedMatrix,
    policy: SchedPolicy,
    placement: Placement,
    /// The cost model resolved once at plan time and reused by every
    /// `execute` call, so repeated executions of one plan never
    /// re-resolve characterization-derived pricing.
    costs: SliceCostModel,
    placement_time: std::time::Duration,
}

impl<'a> ScheduledRun<'a> {
    /// Plans a run: decomposes `matrix` into row jobs and places them
    /// onto `policy.arrays` arrays. Resolves the engine's cost model
    /// internally; callers that already hold one (a prepared pipeline)
    /// use [`ScheduledRun::plan_with_costs`].
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidPolicy`] for a malformed policy and
    /// [`SchedError::SliceSizeMismatch`] when `matrix` was sliced with a
    /// different slice size than `engine` is characterized for.
    pub fn plan(
        engine: &'a PimEngine,
        matrix: &'a SlicedMatrix,
        policy: &SchedPolicy,
    ) -> Result<ScheduledRun<'a>> {
        let costs = engine.cost_model();
        ScheduledRun::plan_with_costs(engine, matrix, policy, costs)
    }

    /// Plans a run against an externally prepared cost model — the
    /// characterize-once seam: the caller resolved pricing once (e.g. at
    /// graph-preparation time) and every plan/execute cycle reuses it.
    ///
    /// # Errors
    ///
    /// As [`ScheduledRun::plan`].
    pub fn plan_with_costs(
        engine: &'a PimEngine,
        matrix: &'a SlicedMatrix,
        policy: &SchedPolicy,
        costs: SliceCostModel,
    ) -> Result<ScheduledRun<'a>> {
        policy.validate()?;
        if matrix.slice_size() != engine.config().slice_size {
            return Err(SchedError::SliceSizeMismatch {
                engine_bits: engine.config().slice_size.bits(),
                matrix_bits: matrix.slice_size().bits(),
            });
        }
        let schedule_span = tcim_telemetry::span("schedule");
        let start = Instant::now();
        let jobs = decompose(matrix, &costs);
        // Model the residency buffer the run will actually have: the
        // per-array share minus the row-region reservation. Assignments
        // are unknown while placing, so reserve the widest row of the
        // whole matrix — conservative for arrays that end up with
        // narrower rows.
        let widest_row = jobs.iter().map(|j| j.row_slices as usize).max().unwrap_or(0);
        let residency_capacity =
            per_array_capacity(engine, policy.arrays).saturating_sub(widest_row).max(1);
        let placement = Placement::place(
            jobs,
            policy.arrays,
            policy.placement,
            &costs,
            residency_capacity,
            engine.config().replacement,
            engine.config().replacement_seed,
        );
        placement.validate();
        drop(schedule_span);
        Ok(ScheduledRun {
            engine,
            matrix,
            policy: policy.clone(),
            placement,
            costs,
            placement_time: start.elapsed(),
        })
    }

    /// The placement this run will execute.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Executes the planned run: fans per-array work over host worker
    /// threads, merges triangle counts and statistics deterministically,
    /// and aggregates inter-array timing/energy.
    pub fn execute(&self) -> ScheduledReport {
        self.execute_mode(Attribution::Count).report
    }

    /// Executes the planned run with triangle attribution: every array
    /// additionally reads non-zero AND results back out and accumulates
    /// a partial per-vertex participation vector (and, when
    /// `need_support` is set, partial per-arc triangle support); the
    /// partials merge deterministically in array order.
    ///
    /// The extra readouts appear in the per-array statistics and are
    /// priced into the report's critical path and energy, mirroring the
    /// serial engine's attributed run.
    pub fn execute_attributed(&self, need_support: bool) -> AttributedScheduledRun {
        self.execute_mode(if need_support {
            Attribution::PerVertexWithSupport
        } else {
            Attribution::PerVertex
        })
    }

    fn execute_mode(&self, attribution: Attribution) -> AttributedScheduledRun {
        let arrays = self.policy.arrays;
        let per_array_jobs: Vec<Vec<&RowJob>> = (0..arrays)
            .map(|a| {
                self.placement
                    .rows_of(a)
                    .into_iter()
                    .map(|j| &self.placement.jobs[j])
                    .collect()
            })
            .collect();
        let capacity = per_array_capacity(self.engine, arrays);
        let replacement = self.engine.config().replacement;
        let base_seed = self.engine.config().replacement_seed;

        let start = Instant::now();
        // One span covers the whole fan-out: per-array work runs on
        // worker threads, which the calling thread's profiler cannot
        // observe, so the array phase is timed as a unit here.
        let array_span = tcim_telemetry::span("array");
        let runs: Vec<ArrayRun> = parallel_map_indexed(arrays, self.host_threads(), |a| {
            let jobs = &per_array_jobs[a];
            // Reserve the widest assigned row inside this array's
            // share of the buffer, exactly like the serial engine
            // reserves its widest row.
            let row_reserve = jobs.iter().map(|j| j.row_slices as usize).max().unwrap_or(0);
            run_array(
                self.matrix,
                jobs,
                self.engine.bitcounter(),
                capacity.saturating_sub(row_reserve).max(1),
                replacement,
                base_seed.wrapping_add(a as u64),
                attribution,
            )
        });
        drop(array_span);
        let host_sim_time = start.elapsed();

        // Deterministic merge: array order, independent of thread timing.
        let triangles = runs.iter().map(|r| r.triangles).sum();
        let rows_per_array: Vec<usize> =
            per_array_jobs.iter().map(std::vec::Vec::len).collect();
        let mut per_vertex = vec![0u64; self.matrix.dim()];
        let mut support: Option<BTreeMap<(u32, u32), u64>> = match attribution {
            Attribution::PerVertexWithSupport => Some(BTreeMap::new()),
            _ => None,
        };
        let mut stats_per_array = Vec::with_capacity(runs.len());
        for run in runs {
            let ArrayRun { stats, per_vertex: partial, support: partial_support, .. } = run;
            stats_per_array.push(stats);
            if let Some(partial) = partial {
                for (total, part) in per_vertex.iter_mut().zip(&partial) {
                    *total += part;
                }
            }
            if let (Some(map), Some(partial_support)) = (support.as_mut(), partial_support) {
                for (i, j, count) in partial_support {
                    *map.entry((i, j)).or_insert(0) += count;
                }
            }
        }
        let report = ScheduledReport::assemble(
            triangles,
            self.policy.clone(),
            &rows_per_array,
            stats_per_array,
            &self.costs,
            self.placement_time,
            host_sim_time,
        );
        AttributedScheduledRun {
            report,
            per_vertex,
            support: support.map(|map| map.into_iter().map(|((i, j), c)| (i, j, c)).collect()),
        }
    }

    fn host_threads(&self) -> usize {
        self.policy.resolved_host_threads()
    }
}

/// Plans and runs batches of independent counting jobs under one policy.
///
/// Jobs fan out over host threads (one worker per job, bounded by the
/// policy's `host_threads`); inside a batch each job simulates its
/// arrays serially so the host is never oversubscribed. Reports come
/// back in submission order.
#[derive(Debug)]
pub struct BatchRunner<'e> {
    engine: &'e PimEngine,
    policy: SchedPolicy,
}

impl<'e> BatchRunner<'e> {
    /// A runner scheduling every job with `policy` on `engine`.
    pub fn new(engine: &'e PimEngine, policy: SchedPolicy) -> Self {
        BatchRunner { engine, policy }
    }

    /// The policy applied to every job.
    pub fn policy(&self) -> &SchedPolicy {
        &self.policy
    }

    /// Plans and executes one job.
    ///
    /// # Errors
    ///
    /// Propagates planning errors; see [`ScheduledRun::plan`].
    pub fn run(&self, matrix: &SlicedMatrix) -> Result<ScheduledReport> {
        ScheduledRun::plan(self.engine, matrix, &self.policy).map(|run| run.execute())
    }

    /// Plans and executes every job, fanning independent jobs over host
    /// threads. Reports are returned in submission order; the first
    /// planning error aborts the batch.
    ///
    /// # Errors
    ///
    /// Propagates the first planning error across the batch.
    pub fn run_all(&self, matrices: &[SlicedMatrix]) -> Result<Vec<ScheduledReport>> {
        // Plan serially (cheap, and errors surface before any spawn)…
        let inner_policy = SchedPolicy { host_threads: Some(1), ..self.policy.clone() };
        let runs: Vec<ScheduledRun<'_>> = matrices
            .iter()
            .map(|m| ScheduledRun::plan(self.engine, m, &inner_policy))
            .collect::<Result<_>>()?;
        // …execute in parallel.
        let threads = self.policy.resolved_host_threads();
        Ok(parallel_map_indexed(runs.len(), threads, |i| runs[i].execute()))
    }
}

/// Applies `f` to `0..n`, fanning over at most `threads` scoped worker
/// threads; results come back indexed, so output order is deterministic
/// regardless of scheduling.
///
/// Exposed because every layer that fans per-array work over the host
/// (this crate's runners, the `tcim-stream` delta executor) needs the
/// identical deterministic fork-join shape.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let chunks = results.chunks_mut(n.div_ceil(workers));
        for (w, chunk) in chunks.enumerate() {
            let f = &f;
            let base = w * n.div_ceil(workers);
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index is computed by exactly one worker"))
        .collect()
}

/// Column-slice buffer capacity available to each of `arrays` equal
/// partitions of the engine's data buffer.
fn per_array_capacity(engine: &PimEngine, arrays: usize) -> usize {
    (engine.capacity_slices() / arrays.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PlacementPolicy;
    use tcim_arch::PimConfig;
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn engine() -> PimEngine {
        PimEngine::new(&PimConfig::default()).unwrap()
    }

    fn wheel_matrix(n: usize) -> SlicedMatrix {
        // Hub 0 plus a rim cycle: n - 1 rim triangles.
        let mut b = SlicedMatrixBuilder::new(n, SliceSize::S64);
        for v in 1..n {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..n - 1 {
            b.add_edge(v, v + 1).unwrap();
        }
        b.add_edge(n - 1, 1).unwrap();
        b.build()
    }

    #[test]
    fn scheduled_count_matches_serial_for_every_policy_and_width() {
        let e = engine();
        let m = wheel_matrix(300);
        let serial = e.run(&m).triangles;
        assert_eq!(serial, 299);
        for placement in PlacementPolicy::ALL {
            for arrays in [1usize, 2, 4, 8, 16] {
                let policy = SchedPolicy { arrays, placement, host_threads: Some(2) };
                let report = ScheduledRun::plan(&e, &m, &policy).unwrap().execute().triangles;
                assert_eq!(report, serial, "{placement} x{arrays}");
            }
        }
    }

    #[test]
    fn parallel_and_serial_host_agree_exactly() {
        let e = engine();
        let m = wheel_matrix(500);
        let serial_host = SchedPolicy { host_threads: Some(1), ..SchedPolicy::with_arrays(8) };
        let parallel_host = SchedPolicy { host_threads: None, ..SchedPolicy::with_arrays(8) };
        let a = ScheduledRun::plan(&e, &m, &serial_host).unwrap().execute();
        let b = ScheduledRun::plan(&e, &m, &parallel_host).unwrap().execute();
        assert_eq!(a.triangles, b.triangles);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.critical_path_s, b.critical_path_s);
    }

    #[test]
    fn attributed_run_matches_serial_local_counts() {
        let e = engine();
        let m = wheel_matrix(120);
        let serial = e.run_local(&m);
        for arrays in [1usize, 2, 4, 8] {
            let policy =
                SchedPolicy { arrays, host_threads: Some(2), ..SchedPolicy::default() };
            let run = ScheduledRun::plan(&e, &m, &policy).unwrap().execute_attributed(true);
            assert_eq!(run.report.triangles, serial.triangles, "{arrays} arrays");
            assert_eq!(run.per_vertex, serial.per_vertex, "{arrays} arrays");
            assert_eq!(run.report.stats.result_readouts, serial.stats.result_readouts);
            // Every triangle contributes to exactly three arcs.
            let support = run.support.unwrap();
            let total: u64 = support.iter().map(|&(_, _, c)| c).sum();
            assert_eq!(total, 3 * serial.triangles);
            assert!(support.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        }
    }

    #[test]
    fn plan_rejects_slice_size_mismatch() {
        let e = engine();
        let mut b = SlicedMatrixBuilder::new(8, SliceSize::S32);
        b.add_edge(0, 1).unwrap();
        let m = b.build();
        let err = ScheduledRun::plan(&e, &m, &SchedPolicy::default()).unwrap_err();
        assert!(matches!(err, SchedError::SliceSizeMismatch { .. }));
    }

    #[test]
    fn batch_runner_preserves_submission_order() {
        let e = engine();
        let matrices: Vec<SlicedMatrix> =
            [50usize, 150, 100].iter().map(|&n| wheel_matrix(n)).collect();
        let runner = BatchRunner::new(&e, SchedPolicy::with_arrays(4));
        let reports = runner.run_all(&matrices).unwrap();
        let counts: Vec<u64> = reports.iter().map(|r| r.triangles).collect();
        assert_eq!(counts, vec![49, 149, 99]);
    }

    #[test]
    fn batch_and_single_runs_agree() {
        let e = engine();
        let m = wheel_matrix(200);
        let runner = BatchRunner::new(&e, SchedPolicy::with_arrays(4));
        let single = runner.run(&m).unwrap();
        let batch = runner.run_all(std::slice::from_ref(&m)).unwrap();
        assert_eq!(single.triangles, batch[0].triangles);
        assert_eq!(single.stats, batch[0].stats);
    }

    #[test]
    fn empty_matrix_schedules_cleanly() {
        let e = engine();
        let m = SlicedMatrix::from_adjacency(&[], SliceSize::S64).unwrap();
        let report = ScheduledRun::plan(&e, &m, &SchedPolicy::default()).unwrap().execute();
        assert_eq!(report.triangles, 0);
        assert_eq!(report.critical_path_s, 0.0);
        assert_eq!(report.imbalance, 1.0);
    }

    #[test]
    fn parallel_map_is_deterministic_and_complete() {
        let out = parallel_map_indexed(37, 5, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        let serial = parallel_map_indexed(7, 1, |i| i + 1);
        assert_eq!(serial, vec![1, 2, 3, 4, 5, 6, 7]);
    }
}
