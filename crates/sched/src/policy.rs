//! Scheduling policy configuration.

use std::fmt;

use crate::error::{Result, SchedError};

/// How row jobs are placed onto computational arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum PlacementPolicy {
    /// Rows are dealt to arrays in rotation, in row order. The simplest
    /// policy and the paper-faithful null hypothesis: no cost model, no
    /// residency knowledge.
    RoundRobin,
    /// Longest-processing-time-first greedy: jobs are sorted by their
    /// popcount-derived busy-time estimate (descending) and each is
    /// assigned to the currently least-loaded array. Classic LPT
    /// makespan bound: ≤ 4/3 · OPT.
    #[default]
    LoadBalanced,
    /// Reuse-aware greedy: jobs are placed (in row order, matching the
    /// execution order) on the array whose modelled row-buffer already
    /// holds the most column slices the job needs, trading estimated
    /// WRITE savings against load balance. The residency model is an
    /// LRU buffer per array, mirroring the paper's data-buffer
    /// replacement choice.
    ReuseAware,
}

impl PlacementPolicy {
    /// All placement policies, for sweeps and ablations.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LoadBalanced,
        PlacementPolicy::ReuseAware,
    ];
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LoadBalanced => "load-balanced",
            PlacementPolicy::ReuseAware => "reuse-aware",
        })
    }
}

/// Configuration of one scheduled (multi-array) run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedPolicy {
    /// Number of independent computational arrays to place work onto.
    pub arrays: usize,
    /// The slice-to-array placement policy.
    pub placement: PlacementPolicy,
    /// Host worker threads driving array simulations concurrently.
    /// `None` uses the machine's available parallelism; `Some(1)` forces
    /// a serial host loop (results are identical either way — the merge
    /// is deterministic).
    pub host_threads: Option<usize>,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy { arrays: 8, placement: PlacementPolicy::default(), host_threads: None }
    }
}

impl SchedPolicy {
    /// A policy distributing work over `arrays` arrays with the default
    /// (load-balanced) placement.
    pub fn with_arrays(arrays: usize) -> Self {
        SchedPolicy { arrays, ..SchedPolicy::default() }
    }

    /// Sets the placement policy (builder style).
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// The effective host worker-thread count: the configured value, or
    /// the machine's available parallelism when unset; always at least 1.
    pub fn resolved_host_threads(&self) -> usize {
        self.host_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(usize::from).unwrap_or(1)
            })
            .max(1)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidPolicy`] for zero arrays or zero
    /// host threads.
    pub fn validate(&self) -> Result<()> {
        if self.arrays == 0 {
            return Err(SchedError::InvalidPolicy {
                reason: "at least one computational array is required".to_string(),
            });
        }
        if self.host_threads == Some(0) {
            return Err(SchedError::InvalidPolicy {
                reason: "at least one host thread is required".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_load_balanced() {
        let p = SchedPolicy::default();
        assert_eq!(p.placement, PlacementPolicy::LoadBalanced);
        assert!(p.arrays >= 1);
        p.validate().unwrap();
    }

    #[test]
    fn zero_arrays_is_rejected() {
        assert!(SchedPolicy::with_arrays(0).validate().is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let p = SchedPolicy { host_threads: Some(0), ..SchedPolicy::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> =
            PlacementPolicy::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, vec!["round-robin", "load-balanced", "reuse-aware"]);
    }
}
