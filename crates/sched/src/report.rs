//! Inter-array timing/energy aggregation: critical-path latency,
//! per-array utilization and the load-imbalance factor.
//!
//! The serial engine reports a single latency obtained by dividing
//! array-side work uniformly over the organization's subarrays. A
//! scheduled run replaces that approximation with explicit placement:
//! each array's busy time is priced individually (`parallel = 1` inside
//! an array), the run finishes when the *slowest* array finishes, and
//! the host's edge-dispatch remains serial — so
//!
//! ```text
//! critical_path = controller(total edges) + max_a busy(a)
//! ```

use tcim_arch::{AccessStats, SliceCostModel};

use crate::placement::imbalance;
use crate::policy::SchedPolicy;

/// Per-array outcome of a scheduled run.
#[derive(Debug, Clone)]
pub struct ArrayReport {
    /// Array index.
    pub array: usize,
    /// Rows (jobs) this array executed.
    pub rows: usize,
    /// The array's access statistics.
    pub stats: AccessStats,
    /// Array-side busy time (writes + ANDs + bit counts), seconds.
    pub busy_s: f64,
    /// Busy time relative to the slowest array (0..=1; 1 for the
    /// critical array, 0 for an idle one).
    pub utilization: f64,
    /// Switching energy spent by this array (J), excluding shared
    /// leakage and host energy.
    pub switching_j: f64,
}

/// Everything one scheduled multi-array run produces.
#[derive(Debug, Clone)]
pub struct ScheduledReport {
    /// Exact triangle count, merged deterministically over arrays.
    pub triangles: u64,
    /// The policy the run was scheduled under.
    pub policy: SchedPolicy,
    /// Per-array statistics, indexed by array.
    pub per_array: Vec<ArrayReport>,
    /// Aggregate access statistics (sums over arrays).
    pub stats: AccessStats,
    /// Serial host dispatch time over all edges (s).
    pub controller_s: f64,
    /// Busy time of the slowest array (s).
    pub max_busy_s: f64,
    /// Mean array busy time (s), over all arrays including idle ones.
    pub mean_busy_s: f64,
    /// End-to-end modelled latency: serial controller + slowest array.
    pub critical_path_s: f64,
    /// Load-imbalance factor `max busy / mean busy` (1.0 = perfect).
    pub imbalance: f64,
    /// Total modelled energy (J): switching + leakage over the critical
    /// path + host controller energy.
    pub total_energy_j: f64,
    /// Host wall-clock time spent planning the placement.
    pub placement_time: std::time::Duration,
    /// Host wall-clock time spent simulating the arrays.
    pub host_sim_time: std::time::Duration,
}

impl ScheduledReport {
    /// Total modelled runtime (s) — the critical path.
    pub fn total_time_s(&self) -> f64 {
        self.critical_path_s
    }

    /// Modelled speedup of array work relative to executing the same
    /// placement on one array (`Σ busy / max busy`); bounded by the
    /// array count.
    pub fn array_speedup(&self) -> f64 {
        if self.max_busy_s > 0.0 {
            self.per_array.iter().map(|a| a.busy_s).sum::<f64>() / self.max_busy_s
        } else {
            1.0
        }
    }

    /// The number of arrays the run was placed onto.
    pub fn arrays(&self) -> usize {
        self.per_array.len()
    }

    /// Assembles the report from per-array outcomes.
    pub(crate) fn assemble(
        triangles: u64,
        policy: SchedPolicy,
        rows_per_array: &[usize],
        stats_per_array: Vec<AccessStats>,
        costs: &SliceCostModel,
        placement_time: std::time::Duration,
        host_sim_time: std::time::Duration,
    ) -> ScheduledReport {
        let busy: Vec<f64> = stats_per_array.iter().map(|s| costs.array_busy_s(s)).collect();
        let max_busy_s = busy.iter().cloned().fold(0.0f64, f64::max);
        let mean_busy_s = busy.iter().sum::<f64>() / busy.len().max(1) as f64;

        let mut aggregate = AccessStats::default();
        let mut per_array = Vec::with_capacity(stats_per_array.len());
        let mut switching_total = 0.0f64;
        for (array, stats) in stats_per_array.into_iter().enumerate() {
            aggregate.merge(&stats);
            let switching_j = stats.total_writes() as f64 * costs.write_energy_j
                + stats.and_ops as f64 * costs.and_energy_j
                + stats.bitcount_ops as f64 * costs.bitcount_energy_j
                + stats.result_readouts as f64 * costs.readout_energy_j;
            switching_total += switching_j;
            per_array.push(ArrayReport {
                array,
                rows: rows_per_array[array],
                stats,
                busy_s: busy[array],
                utilization: if max_busy_s > 0.0 { busy[array] / max_busy_s } else { 0.0 },
                switching_j,
            });
        }

        let controller_s = aggregate.edges as f64 * costs.controller_overhead_s;
        let critical_path_s = controller_s + max_busy_s;
        let total_energy_j = switching_total
            + costs.leakage_w * critical_path_s
            + costs.host_power_w * controller_s;

        ScheduledReport {
            triangles,
            policy,
            per_array,
            stats: aggregate,
            controller_s,
            max_busy_s,
            mean_busy_s,
            critical_path_s,
            imbalance: imbalance(&busy),
            total_energy_j,
            placement_time,
            host_sim_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_arch::{PimConfig, PimEngine};

    fn costs() -> SliceCostModel {
        PimEngine::new(&PimConfig::default()).unwrap().cost_model()
    }

    fn stats(edges: u64, pairs: u64, writes: u64) -> AccessStats {
        AccessStats {
            edges,
            and_ops: pairs,
            bitcount_ops: pairs,
            row_slice_writes: writes,
            col_misses: pairs.min(writes),
            ..AccessStats::default()
        }
    }

    #[test]
    fn critical_path_is_controller_plus_slowest_array() {
        let c = costs();
        let report = ScheduledReport::assemble(
            7,
            SchedPolicy::with_arrays(2),
            &[2, 1],
            vec![stats(10, 40, 6), stats(5, 10, 2)],
            &c,
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
        assert_eq!(report.triangles, 7);
        assert_eq!(report.stats.edges, 15);
        let busy0 = report.per_array[0].busy_s;
        let busy1 = report.per_array[1].busy_s;
        assert!(busy0 > busy1);
        assert!((report.max_busy_s - busy0).abs() < 1e-18);
        assert!((report.critical_path_s - (report.controller_s + busy0)).abs() < 1e-18);
        assert!((report.per_array[0].utilization - 1.0).abs() < 1e-12);
        assert!(report.per_array[1].utilization < 1.0);
        assert!(report.imbalance > 1.0);
        assert!(report.array_speedup() > 1.0);
        assert!(report.total_energy_j > 0.0);
    }

    #[test]
    fn idle_run_is_well_defined() {
        let report = ScheduledReport::assemble(
            0,
            SchedPolicy::with_arrays(4),
            &[0, 0, 0, 0],
            vec![AccessStats::default(); 4],
            &costs(),
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
        assert_eq!(report.triangles, 0);
        assert_eq!(report.critical_path_s, 0.0);
        assert_eq!(report.imbalance, 1.0);
        assert_eq!(report.array_speedup(), 1.0);
        assert_eq!(report.arrays(), 4);
    }
}
