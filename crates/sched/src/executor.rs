//! The per-array executor: Algorithm 1 restricted to one array's
//! assigned rows, with the array's own column-slice buffer.
//!
//! Functionally this mirrors `tcim_arch::PimEngine::run`; the difference
//! is scope — each array only sees its assigned rows and manages an
//! independent (partitioned) data buffer, which is exactly what makes
//! the scheduled counts bit-identical to the serial engine: the AND +
//! BitCount dataflow per edge is unchanged, only *where* and *when* each
//! edge executes moves.

use std::collections::HashSet;

use tcim_arch::{AccessStats, BitCounterModel, ReplacementPolicy, SliceCache};
use tcim_bitmatrix::SlicedMatrix;

use crate::jobs::RowJob;

/// The functional result of one array's execution.
#[derive(Debug, Clone)]
pub(crate) struct ArrayRun {
    /// Triangles found by this array's slice pairs.
    pub triangles: u64,
    /// This array's access statistics.
    pub stats: AccessStats,
}

/// Executes the assigned `jobs` (ascending row order) on one array.
pub(crate) fn run_array(
    matrix: &SlicedMatrix,
    jobs: &[&RowJob],
    bitcounter: &BitCounterModel,
    column_capacity: usize,
    replacement: ReplacementPolicy,
    replacement_seed: u64,
) -> ArrayRun {
    let mut cache = SliceCache::new(column_capacity.max(1), replacement, replacement_seed);
    let mut stats = AccessStats::default();
    let mut triangles = 0u64;
    let mut row_loaded: HashSet<u32> = HashSet::new();

    for job in jobs {
        let i = job.row;
        // A new row overwrites the reserved row region (§IV-A).
        row_loaded.clear();
        let row = matrix.row(i);
        for &j in &job.cols {
            stats.edges += 1;
            let pairs = row
                .matching_slices(matrix.col(j))
                .expect("rows and columns of one matrix always align");
            for (k, rs, cs) in pairs {
                if row_loaded.insert(k) {
                    stats.row_slice_writes += 1;
                }
                let key = (u64::from(j) << 32) | u64::from(k);
                match cache.access(key) {
                    tcim_arch::AccessOutcome::Hit => stats.col_hits += 1,
                    tcim_arch::AccessOutcome::Miss => stats.col_misses += 1,
                    tcim_arch::AccessOutcome::Exchange { .. } => stats.col_exchanges += 1,
                }
                let anded: Vec<u64> = rs.iter().zip(cs).map(|(a, b)| a & b).collect();
                triangles += bitcounter.count(&anded);
                stats.and_ops += 1;
                stats.bitcount_ops += 1;
            }
        }
    }

    ArrayRun { triangles, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::decompose;
    use tcim_arch::{PimConfig, PimEngine};
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn fig2() -> SlicedMatrix {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn one_array_reproduces_the_serial_engine() {
        let m = fig2();
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let jobs = decompose(&m, &engine.cost_model());
        let refs: Vec<&RowJob> = jobs.iter().collect();
        let run = run_array(&m, &refs, engine.bitcounter(), 1024, ReplacementPolicy::Lru, 0);
        let serial = engine.run(&m);
        assert_eq!(run.triangles, serial.triangles);
        assert_eq!(run.stats.and_ops, serial.stats.and_ops);
        assert_eq!(run.stats.row_slice_writes, serial.stats.row_slice_writes);
    }

    #[test]
    fn disjoint_partitions_sum_to_the_whole() {
        let m = fig2();
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let jobs = decompose(&m, &engine.cost_model());
        let serial = engine.run(&m).triangles;
        let first: Vec<&RowJob> = jobs.iter().take(1).collect();
        let rest: Vec<&RowJob> = jobs.iter().skip(1).collect();
        let a = run_array(&m, &first, engine.bitcounter(), 64, ReplacementPolicy::Lru, 0);
        let b = run_array(&m, &rest, engine.bitcounter(), 64, ReplacementPolicy::Lru, 1);
        assert_eq!(a.triangles + b.triangles, serial);
        assert_eq!(a.stats.edges + b.stats.edges, 5);
    }

    #[test]
    fn tiny_buffer_changes_traffic_not_counts() {
        let mut b = SlicedMatrixBuilder::new(500, SliceSize::S64);
        for v in 1..500 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..499 {
            b.add_edge(v, v + 1).unwrap();
        }
        let m = b.build();
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let jobs = decompose(&m, &engine.cost_model());
        let refs: Vec<&RowJob> = jobs.iter().collect();
        let roomy = run_array(&m, &refs, engine.bitcounter(), 4096, ReplacementPolicy::Lru, 0);
        let tight = run_array(&m, &refs, engine.bitcounter(), 1, ReplacementPolicy::Lru, 0);
        assert_eq!(roomy.triangles, tight.triangles);
        assert!(tight.stats.col_exchanges > roomy.stats.col_exchanges);
    }
}
