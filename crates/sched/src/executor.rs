//! The per-array executor: Algorithm 1 restricted to one array's
//! assigned rows, with the array's own column-slice buffer.
//!
//! Functionally this mirrors `tcim_arch::PimEngine::run`; the difference
//! is scope — each array only sees its assigned rows and manages an
//! independent (partitioned) data buffer, which is exactly what makes
//! the scheduled counts bit-identical to the serial engine: the AND +
//! BitCount dataflow per edge is unchanged, only *where* and *when* each
//! edge executes moves.

use std::collections::HashSet;

use tcim_arch::{
    AccessStats, BitCounterModel, ReplacementPolicy, SliceCache, TriangleSink, TriangleTally,
};
use tcim_bitmatrix::{RowEncoding, SlicedMatrix};

use crate::jobs::RowJob;

/// What each array accumulates beyond the triangle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Attribution {
    /// Plain counting: the bit counter consumes AND results in place.
    Count,
    /// Per-vertex participation: every non-zero AND result is read back
    /// out (one read-class access) and its bits attributed.
    PerVertex,
    /// Per-vertex participation plus per-arc triangle support.
    PerVertexWithSupport,
}

/// The functional result of one array's execution.
#[derive(Debug, Clone)]
pub(crate) struct ArrayRun {
    /// Triangles found by this array's slice pairs.
    pub triangles: u64,
    /// This array's access statistics.
    pub stats: AccessStats,
    /// Partial per-vertex participation over the whole vertex universe
    /// (matrix ids); present unless the attribution was
    /// [`Attribution::Count`].
    pub per_vertex: Option<Vec<u64>>,
    /// Partial per-arc triangle support triples `(i, j, count)` in
    /// ascending matrix-id order; present only for
    /// [`Attribution::PerVertexWithSupport`].
    pub support: Option<Vec<(u32, u32, u64)>>,
}

/// Executes the assigned `jobs` (ascending row order) on one array.
pub(crate) fn run_array(
    matrix: &SlicedMatrix,
    jobs: &[&RowJob],
    bitcounter: &BitCounterModel,
    column_capacity: usize,
    replacement: ReplacementPolicy,
    replacement_seed: u64,
    attribution: Attribution,
) -> ArrayRun {
    let mut cache = SliceCache::new(column_capacity.max(1), replacement, replacement_seed);
    let mut stats = AccessStats::default();
    let mut triangles = 0u64;
    let mut row_loaded: HashSet<u32> = HashSet::new();
    let slice_bits = matrix.slice_size().bits();
    let mut tally = match attribution {
        Attribution::Count => None,
        Attribution::PerVertex => Some(TriangleTally::new(matrix.dim(), false)),
        Attribution::PerVertexWithSupport => Some(TriangleTally::new(matrix.dim(), true)),
    };

    let sparse = matrix.encoding() == RowEncoding::Sparse;
    for job in jobs {
        let i = job.row;
        // A new row overwrites the reserved row region (§IV-A).
        row_loaded.clear();
        let row = matrix.row(i);
        for &j in &job.cols {
            let pair_stats = row
                .for_each_matching(matrix.col(j), |k, anded| {
                    if row_loaded.insert(k) {
                        stats.row_slice_writes += 1;
                    }
                    let key = (u64::from(j) << 32) | u64::from(k);
                    match cache.access(key) {
                        tcim_arch::AccessOutcome::Hit => stats.col_hits += 1,
                        tcim_arch::AccessOutcome::Miss => stats.col_misses += 1,
                        tcim_arch::AccessOutcome::Exchange { .. } => stats.col_exchanges += 1,
                    }
                    let count = bitcounter.count(anded);
                    triangles += count;
                    stats.and_ops += 1;
                    stats.bitcount_ops += 1;
                    if count > 0 {
                        if let Some(tally) = tally.as_mut() {
                            // Read the surviving bits back out and attribute
                            // the triangle exactly as the serial attributed
                            // run does: a surviving bit w satisfies
                            // i < w < j (the `TriangleSink` contract).
                            stats.result_readouts += 1;
                            bitcounter.read_out(anded, |offset| {
                                tally.triangle(i, k * slice_bits + offset, j);
                            });
                        }
                    }
                })
                .expect("rows and columns of one matrix always align");
            stats.blocks_skipped += pair_stats.skipped;
            // Sparse matrices skip the per-edge dispatch entirely when
            // the summary walk visits nothing (mirrors the serial
            // engine's accounting).
            if !sparse || pair_stats.visited > 0 {
                stats.edges += 1;
            }
        }
    }

    let (per_vertex, support) = match tally {
        Some(tally) => {
            let (_, per_vertex, support) = tally.into_parts();
            (Some(per_vertex), support)
        }
        None => (None, None),
    };
    ArrayRun { triangles, stats, per_vertex, support }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::decompose;
    use tcim_arch::{PimConfig, PimEngine};
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn fig2() -> SlicedMatrix {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn one_array_reproduces_the_serial_engine() {
        let m = fig2();
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let jobs = decompose(&m, &engine.cost_model());
        let refs: Vec<&RowJob> = jobs.iter().collect();
        let run = run_array(
            &m,
            &refs,
            engine.bitcounter(),
            1024,
            ReplacementPolicy::Lru,
            0,
            Attribution::Count,
        );
        let serial = engine.run(&m);
        assert_eq!(run.triangles, serial.triangles);
        assert_eq!(run.stats.and_ops, serial.stats.and_ops);
        assert_eq!(run.stats.row_slice_writes, serial.stats.row_slice_writes);
    }

    #[test]
    fn disjoint_partitions_sum_to_the_whole() {
        let m = fig2();
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let jobs = decompose(&m, &engine.cost_model());
        let serial = engine.run(&m).triangles;
        let first: Vec<&RowJob> = jobs.iter().take(1).collect();
        let rest: Vec<&RowJob> = jobs.iter().skip(1).collect();
        let a = run_array(
            &m,
            &first,
            engine.bitcounter(),
            64,
            ReplacementPolicy::Lru,
            0,
            Attribution::Count,
        );
        let b = run_array(
            &m,
            &rest,
            engine.bitcounter(),
            64,
            ReplacementPolicy::Lru,
            1,
            Attribution::Count,
        );
        assert_eq!(a.triangles + b.triangles, serial);
        assert_eq!(a.stats.edges + b.stats.edges, 5);
    }

    #[test]
    fn tiny_buffer_changes_traffic_not_counts() {
        let mut b = SlicedMatrixBuilder::new(500, SliceSize::S64);
        for v in 1..500 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..499 {
            b.add_edge(v, v + 1).unwrap();
        }
        let m = b.build();
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let jobs = decompose(&m, &engine.cost_model());
        let refs: Vec<&RowJob> = jobs.iter().collect();
        let roomy = run_array(
            &m,
            &refs,
            engine.bitcounter(),
            4096,
            ReplacementPolicy::Lru,
            0,
            Attribution::Count,
        );
        let tight = run_array(
            &m,
            &refs,
            engine.bitcounter(),
            1,
            ReplacementPolicy::Lru,
            0,
            Attribution::Count,
        );
        assert_eq!(roomy.triangles, tight.triangles);
        assert!(tight.stats.col_exchanges > roomy.stats.col_exchanges);
    }
}
