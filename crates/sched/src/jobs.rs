//! Work decomposition: one schedulable job per non-empty matrix row.
//!
//! The TCIM dataflow processes the non-zero elements of the oriented
//! adjacency matrix row by row; a row's slices are written into the
//! array's reserved row region once and reused for all of the row's
//! edges (§IV-A). The row is therefore the natural placement unit — it
//! is the largest unit that never splits row-slice reuse across arrays,
//! and rows are plentiful enough to balance.

use tcim_arch::SliceCostModel;
use tcim_bitmatrix::SlicedMatrix;

/// One placement unit: a matrix row together with the precomputed
/// quantities every placement policy needs.
#[derive(Debug, Clone)]
pub struct RowJob {
    /// The row index `i`.
    pub row: u32,
    /// Column indices `j` of the row's edges `(i, j)`, ascending.
    pub cols: Vec<u32>,
    /// Valid slice pairs across all of the row's edges — the number of
    /// AND + BitCount operations the row costs.
    pub pairs: u64,
    /// Valid slices of the row itself (written once into the row region
    /// of whichever array the job lands on).
    pub row_slices: u64,
    /// Distinct column-slice keys (`column id << 32 | slice index`) the
    /// row touches — the reuse footprint the reuse-aware policy scores.
    pub col_keys: Vec<u64>,
    /// Cold-cache busy-time estimate (s): every touched slice written
    /// once plus the AND/BitCount work. The load metric of the
    /// load-balanced policy.
    pub est_busy_s: f64,
}

/// Decomposes `matrix` into row jobs, pricing each with `costs`.
///
/// Rows without edges produce no job. Host-side decomposition walks the
/// valid-slice index intersection once per edge — the same merge the
/// controller's valid-pair lookup performs, so the estimate is exact in
/// pair count, not a heuristic.
pub fn decompose(matrix: &SlicedMatrix, costs: &SliceCostModel) -> Vec<RowJob> {
    let mut jobs: Vec<RowJob> = Vec::new();
    for (i, j) in matrix.edges() {
        if jobs.last().map(|job| job.row) != Some(i) {
            let row = matrix.row(i);
            jobs.push(RowJob {
                row: i,
                cols: Vec::new(),
                pairs: 0,
                row_slices: row.valid_slice_count() as u64,
                col_keys: Vec::new(),
                est_busy_s: 0.0,
            });
        }
        let job = jobs.last_mut().expect("job for current row was just pushed");
        job.cols.push(j);
        // The index-only walk skips sparse pairs the kernel will skip
        // too, so the job's pair count and reuse footprint price exactly
        // the work the executor will dispatch.
        matrix
            .row(i)
            .for_each_matching_index(matrix.col(j), |k| {
                job.pairs += 1;
                // Edges are unique within a row, so (j, k) keys never repeat.
                job.col_keys.push((u64::from(j) << 32) | u64::from(k));
            })
            .expect("rows and columns of one matrix always align");
    }
    for job in &mut jobs {
        job.est_busy_s =
            costs.estimate_busy_s(job.row_slices + job.col_keys.len() as u64, job.pairs);
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_arch::{PimConfig, PimEngine};
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn fig2() -> SlicedMatrix {
        let mut b = SlicedMatrixBuilder::new(4, SliceSize::S64);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        b.build()
    }

    fn costs() -> SliceCostModel {
        PimEngine::new(&PimConfig::default()).unwrap().cost_model()
    }

    #[test]
    fn fig2_decomposes_into_three_jobs() {
        let jobs = decompose(&fig2(), &costs());
        let rows: Vec<u32> = jobs.iter().map(|j| j.row).collect();
        assert_eq!(rows, vec![0, 1, 2]);
        let cols: Vec<Vec<u32>> = jobs.iter().map(|j| j.cols.clone()).collect();
        assert_eq!(cols, vec![vec![1, 2], vec![2, 3], vec![3]]);
        // n = 4 < 64: every edge is exactly one valid pair.
        assert_eq!(jobs.iter().map(|j| j.pairs).sum::<u64>(), 5);
        for job in &jobs {
            assert_eq!(job.row_slices, 1);
            assert_eq!(job.col_keys.len() as u64, job.pairs);
            assert!(job.est_busy_s > 0.0);
        }
    }

    #[test]
    fn empty_matrix_has_no_jobs() {
        let m = SlicedMatrix::from_adjacency(&[], SliceSize::S64).unwrap();
        assert!(decompose(&m, &costs()).is_empty());
    }

    #[test]
    fn pair_totals_match_engine_and_ops() {
        let mut b = SlicedMatrixBuilder::new(200, SliceSize::S64);
        for v in 1..200 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..199 {
            b.add_edge(v, v + 1).unwrap();
        }
        let m = b.build();
        let jobs = decompose(&m, &costs());
        let engine = PimEngine::new(&PimConfig::default()).unwrap();
        let run = engine.run(&m);
        assert_eq!(jobs.iter().map(|j| j.pairs).sum::<u64>(), run.stats.and_ops);
    }
}
