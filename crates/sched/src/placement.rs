//! Slice-to-array placement: the three policies and their invariants.

use tcim_arch::{ReplacementPolicy, SliceCache, SliceCostModel};

use crate::jobs::RowJob;
use crate::policy::PlacementPolicy;

/// The result of placing row jobs onto `arrays` computational arrays.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Number of arrays placed onto.
    pub arrays: usize,
    /// The policy that produced this placement.
    pub policy: PlacementPolicy,
    /// The decomposed jobs, in row order.
    pub jobs: Vec<RowJob>,
    /// `assignment[j]` is the array index of `jobs[j]`.
    pub assignment: Vec<u32>,
    /// Estimated busy time per array under the cold-cache cost model.
    pub est_busy_per_array: Vec<f64>,
}

impl Placement {
    /// Places `jobs` onto `arrays` arrays with `policy`.
    ///
    /// `residency_capacity`, `residency` and `residency_seed` describe
    /// the per-array column-slice buffer the reuse-aware policy models —
    /// size, replacement behavior and the per-array seeding, which must
    /// match what the run will actually execute with (ignored by the
    /// other policies).
    pub fn place(
        jobs: Vec<RowJob>,
        arrays: usize,
        policy: PlacementPolicy,
        costs: &SliceCostModel,
        residency_capacity: usize,
        residency: ReplacementPolicy,
        residency_seed: u64,
    ) -> Placement {
        assert!(arrays > 0, "placement requires at least one array");
        let assignment = match policy {
            PlacementPolicy::RoundRobin => round_robin(&jobs, arrays),
            PlacementPolicy::LoadBalanced => load_balanced(&jobs, arrays),
            PlacementPolicy::ReuseAware => reuse_aware(
                &jobs,
                arrays,
                costs,
                residency_capacity,
                residency,
                residency_seed,
            ),
        };
        let mut est_busy_per_array = vec![0.0f64; arrays];
        for (job, &a) in jobs.iter().zip(&assignment) {
            est_busy_per_array[a as usize] += job.est_busy_s;
        }
        Placement { arrays, policy, jobs, assignment, est_busy_per_array }
    }

    /// Row indices assigned to `array`, ascending (the execution order
    /// within the array).
    pub fn rows_of(&self, array: usize) -> Vec<usize> {
        // Jobs are stored in row order, so filtering preserves ascending
        // rows.
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a as usize == array)
            .map(|(j, _)| j)
            .collect()
    }

    /// Checks the fundamental invariant: every job is placed exactly once
    /// onto a valid array. Returns the per-array job counts.
    ///
    /// # Panics
    ///
    /// Panics when the invariant is violated — placement bugs must not
    /// silently drop or duplicate work.
    pub fn validate(&self) -> Vec<usize> {
        assert_eq!(
            self.assignment.len(),
            self.jobs.len(),
            "every job needs exactly one assignment"
        );
        let mut counts = vec![0usize; self.arrays];
        for &a in &self.assignment {
            assert!(
                (a as usize) < self.arrays,
                "job assigned to array {a} of {}",
                self.arrays
            );
            counts[a as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), self.jobs.len());
        counts
    }

    /// Estimated load-imbalance factor: max over mean of per-array
    /// estimated busy time (1.0 = perfectly balanced; only meaningful
    /// when there is work).
    pub fn est_imbalance(&self) -> f64 {
        imbalance(&self.est_busy_per_array)
    }

    /// Summarizes each array's share of the placement — job count,
    /// arcs, slice pairs, estimated busy time — for diagnostics (query
    /// EXPLAIN plans render one line per array from this).
    pub fn per_array_summary(&self) -> Vec<ArrayAssignment> {
        let mut summary: Vec<ArrayAssignment> = (0..self.arrays)
            .map(|array| ArrayAssignment {
                array,
                jobs: 0,
                arcs: 0,
                slice_pairs: 0,
                est_busy_s: self.est_busy_per_array[array],
            })
            .collect();
        for (job, &a) in self.jobs.iter().zip(&self.assignment) {
            let entry = &mut summary[a as usize];
            entry.jobs += 1;
            entry.arcs += job.cols.len() as u64;
            entry.slice_pairs += job.pairs;
        }
        summary
    }
}

/// One array's share of a [`Placement`], summarized for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayAssignment {
    /// Array index.
    pub array: usize,
    /// Row jobs assigned to this array.
    pub jobs: usize,
    /// Processed arcs (edges) across those jobs.
    pub arcs: u64,
    /// Valid slice pairs across those jobs.
    pub slice_pairs: u64,
    /// Estimated busy time under the cold-cache cost model (s).
    pub est_busy_s: f64,
}

/// Max-over-mean of a non-negative load vector; 1.0 when empty or idle.
pub(crate) fn imbalance(loads: &[f64]) -> f64 {
    let max = loads.iter().cloned().fold(0.0f64, f64::max);
    let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

fn round_robin(jobs: &[RowJob], arrays: usize) -> Vec<u32> {
    (0..jobs.len()).map(|j| (j % arrays) as u32).collect()
}

/// Longest-processing-time-first: sort by estimated busy time
/// (descending, row ascending as the deterministic tie-break), assign
/// each job to the least-loaded array.
fn load_balanced(jobs: &[RowJob], arrays: usize) -> Vec<u32> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[b]
            .est_busy_s
            .partial_cmp(&jobs[a].est_busy_s)
            .expect("busy estimates are finite")
            .then(jobs[a].row.cmp(&jobs[b].row))
    });
    let mut load = vec![0.0f64; arrays];
    let mut assignment = vec![0u32; jobs.len()];
    for j in order {
        let target = argmin(&load);
        assignment[j] = target as u32;
        load[target] += jobs[j].est_busy_s;
    }
    assignment
}

/// Reuse-aware greedy: jobs are visited in row order (the order arrays
/// will execute them) and each is placed on the array minimising the
/// projected finish time *after* subtracting the WRITE cost its resident
/// column slices would save. Each array's residency is modelled with the
/// same buffer (capacity *and* replacement policy) the run executes
/// with.
fn reuse_aware(
    jobs: &[RowJob],
    arrays: usize,
    costs: &SliceCostModel,
    residency_capacity: usize,
    replacement: ReplacementPolicy,
    replacement_seed: u64,
) -> Vec<u32> {
    let mut load = vec![0.0f64; arrays];
    let mut residency: Vec<SliceCache> = (0..arrays)
        .map(|a| {
            SliceCache::new(
                residency_capacity.max(1),
                replacement,
                replacement_seed.wrapping_add(a as u64),
            )
        })
        .collect();
    let mut assignment = vec![0u32; jobs.len()];
    for (j, job) in jobs.iter().enumerate() {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        let mut best_saved = 0.0f64;
        for (a, model) in residency.iter().enumerate() {
            let hits = job.col_keys.iter().filter(|&&k| model.contains(k)).count() as u64;
            let saved = hits as f64 * costs.write_latency_s;
            let score = load[a] + job.est_busy_s - saved;
            if score < best_score {
                best_score = score;
                best = a;
                best_saved = saved;
            }
        }
        assignment[j] = best as u32;
        load[best] += job.est_busy_s - best_saved;
        for &key in &job.col_keys {
            residency[best].access(key);
        }
    }
    assignment
}

fn argmin(load: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &l) in load.iter().enumerate() {
        if l < load[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::decompose;
    use tcim_arch::{PimConfig, PimEngine};
    use tcim_bitmatrix::{SliceSize, SlicedMatrixBuilder};

    fn costs() -> SliceCostModel {
        PimEngine::new(&PimConfig::default()).unwrap().cost_model()
    }

    /// A star + chain graph: row 0 is far heavier than the others.
    fn skewed_jobs() -> Vec<RowJob> {
        let mut b = SlicedMatrixBuilder::new(400, SliceSize::S64);
        for v in 1..400 {
            b.add_edge(0, v).unwrap();
        }
        for v in 1..399 {
            b.add_edge(v, v + 1).unwrap();
        }
        decompose(&b.build(), &costs())
    }

    #[test]
    fn every_policy_places_each_job_exactly_once() {
        let c = costs();
        for policy in PlacementPolicy::ALL {
            for arrays in [1usize, 2, 4, 8, 16] {
                let p = Placement::place(
                    skewed_jobs(),
                    arrays,
                    policy,
                    &c,
                    64,
                    ReplacementPolicy::Lru,
                    0,
                );
                let counts = p.validate();
                assert_eq!(counts.iter().sum::<usize>(), p.jobs.len(), "{policy} x{arrays}");
            }
        }
    }

    #[test]
    fn round_robin_deals_in_rotation() {
        let p = Placement::place(
            skewed_jobs(),
            4,
            PlacementPolicy::RoundRobin,
            &costs(),
            64,
            ReplacementPolicy::Lru,
            0,
        );
        for (j, &a) in p.assignment.iter().enumerate() {
            assert_eq!(a as usize, j % 4);
        }
    }

    #[test]
    fn lpt_beats_round_robin_on_skew() {
        let c = costs();
        for arrays in [2usize, 4, 8] {
            let rr = Placement::place(
                skewed_jobs(),
                arrays,
                PlacementPolicy::RoundRobin,
                &c,
                64,
                ReplacementPolicy::Lru,
                0,
            );
            let lpt = Placement::place(
                skewed_jobs(),
                arrays,
                PlacementPolicy::LoadBalanced,
                &c,
                64,
                ReplacementPolicy::Lru,
                0,
            );
            let rr_max = rr.est_busy_per_array.iter().cloned().fold(0.0, f64::max);
            let lpt_max = lpt.est_busy_per_array.iter().cloned().fold(0.0, f64::max);
            assert!(
                lpt_max <= rr_max + 1e-18,
                "LPT {lpt_max} vs RR {rr_max} on {arrays} arrays"
            );
            assert!(lpt.est_imbalance() <= rr.est_imbalance() + 1e-12);
        }
    }

    #[test]
    fn single_array_placement_is_trivial() {
        let c = costs();
        for policy in PlacementPolicy::ALL {
            let p =
                Placement::place(skewed_jobs(), 1, policy, &c, 64, ReplacementPolicy::Lru, 0);
            assert!(p.assignment.iter().all(|&a| a == 0));
            assert!((p.est_imbalance() - 1.0).abs() < 1e-12);
        }
    }

    /// Two interleaved cliques with disjoint column-slice footprints:
    /// clique A on the even vertices of 0..64, clique B on the odd ones.
    /// Row order interleaves A and B jobs, so a reuse-blind balancer
    /// scatters both cliques over both arrays while the reuse-aware
    /// policy can colocate each clique with its resident slices.
    fn two_clique_jobs() -> Vec<RowJob> {
        let mut b = SlicedMatrixBuilder::new(64, SliceSize::S64);
        for u in (0..64usize).step_by(2) {
            for v in ((u + 2)..64).step_by(2) {
                b.add_edge(u, v).unwrap();
            }
        }
        for u in (1..64usize).step_by(2) {
            for v in ((u + 2)..64).step_by(2) {
                b.add_edge(u, v).unwrap();
            }
        }
        decompose(&b.build(), &costs())
    }

    #[test]
    fn reuse_aware_colocates_shared_column_slices() {
        let c = costs();
        let jobs = two_clique_jobs();
        let p = Placement::place(
            jobs.clone(),
            2,
            PlacementPolicy::ReuseAware,
            &c,
            4096,
            ReplacementPolicy::Lru,
            0,
        );
        p.validate();
        // Estimated total resident hits of an assignment: keys already
        // placed on the same array by an earlier job.
        let hits = |assignment: &[u32]| -> usize {
            let mut seen: Vec<std::collections::HashSet<u64>> =
                vec![std::collections::HashSet::new(); 2];
            let mut total = 0;
            for (job, &a) in jobs.iter().zip(assignment) {
                total +=
                    job.col_keys.iter().filter(|&&k| seen[a as usize].contains(&k)).count();
                seen[a as usize].extend(job.col_keys.iter().copied());
            }
            total
        };
        let rr = Placement::place(
            jobs.clone(),
            2,
            PlacementPolicy::RoundRobin,
            &c,
            4096,
            ReplacementPolicy::Lru,
            0,
        );
        assert!(
            hits(&p.assignment) >= hits(&rr.assignment),
            "reuse-aware {:?} vs round-robin {:?}",
            p.assignment,
            rr.assignment
        );
    }

    #[test]
    fn imbalance_of_idle_load_is_one() {
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance(&[]), 1.0);
        assert!((imbalance(&[2.0, 1.0, 1.0]) - 1.5).abs() < 1e-12);
    }
}
