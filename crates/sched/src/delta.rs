//! Batch *delta* jobs: placing per-update AND + BitCount kernels of a
//! dynamic-graph batch onto computational arrays.
//!
//! The streaming layer (`tcim-stream`) turns every edge update into one
//! TCIM kernel invocation — `popcount(N(u) AND N(v))` over the two
//! endpoints' sliced neighbourhood rows. Unlike the row jobs of a full
//! count, delta jobs are tiny, independent and arrive in bursts, so they
//! get their own placement path: no residency model (each pair of rows
//! is touched once), just the cost-model busy-time estimate and the
//! policy's balancing discipline.

use tcim_arch::SliceCostModel;

use crate::error::Result;
use crate::policy::{PlacementPolicy, SchedPolicy};

/// One schedulable delta kernel: the AND + BitCount of a single edge
/// update, priced for placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaJob {
    /// Caller-side identifier (index into the batch round).
    pub id: usize,
    /// Slices written into the array: both operands' valid slices.
    pub write_slices: u64,
    /// Estimated AND + BitCount passes — the matching valid-pair count
    /// of the two operands (exact when computed by an index merge, an
    /// upper bound `min(valid_a, valid_b)` otherwise).
    pub est_pairs: u64,
    /// Cold busy-time estimate (s) from the engine's cost model.
    pub est_busy_s: f64,
}

impl DeltaJob {
    /// Prices a delta kernel whose operands hold `valid_a` and `valid_b`
    /// valid slices with `est_pairs` matching pairs.
    pub fn price(
        id: usize,
        valid_a: u64,
        valid_b: u64,
        est_pairs: u64,
        costs: &SliceCostModel,
    ) -> Self {
        let write_slices = valid_a + valid_b;
        DeltaJob {
            id,
            write_slices,
            est_pairs,
            est_busy_s: costs.estimate_busy_s(write_slices, est_pairs),
        }
    }
}

/// A placement of delta jobs onto arrays, with the modelled per-array
/// busy times the placement implies.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPlan {
    /// Number of arrays placed onto.
    pub arrays: usize,
    /// `assignment[k]` is the array of `jobs[k]` (input order).
    pub assignment: Vec<usize>,
    /// Modelled busy time per array (s).
    pub per_array_busy_s: Vec<f64>,
}

impl DeltaPlan {
    /// The modelled critical path of the round: the busiest array.
    pub fn critical_path_s(&self) -> f64 {
        self.per_array_busy_s.iter().copied().fold(0.0, f64::max)
    }

    /// Load-imbalance factor `max / mean` over all arrays, idle ones
    /// included (`1.0` for an empty or perfectly balanced plan) — the
    /// same metric `ScheduledReport` reports for row-job placements.
    pub fn imbalance(&self) -> f64 {
        crate::placement::imbalance(&self.per_array_busy_s)
    }

    /// Job positions grouped by array in one pass: `result[a]` holds
    /// the input-order positions assigned to array `a` (ascending).
    /// The grouped form every per-array executor (stream delta rounds,
    /// shard composition passes) consumes.
    pub fn per_array_jobs(&self) -> Vec<Vec<usize>> {
        let mut per: Vec<Vec<usize>> = vec![Vec::new(); self.arrays];
        for (k, &a) in self.assignment.iter().enumerate() {
            per[a].push(k);
        }
        per
    }

    /// Job positions (input order) assigned to `array`.
    pub fn jobs_of(&self, array: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == array)
            .map(|(k, _)| k)
            .collect()
    }
}

/// Places `jobs` onto `policy.arrays` arrays.
///
/// [`PlacementPolicy::RoundRobin`] deals jobs in input order; the
/// cost-aware policies ([`PlacementPolicy::LoadBalanced`] and
/// [`PlacementPolicy::ReuseAware`], which has no residency to exploit
/// for one-shot pairs) run greedy LPT on the busy-time estimates.
///
/// # Errors
///
/// Returns [`SchedError::InvalidPolicy`](crate::SchedError::InvalidPolicy)
/// for a malformed policy.
pub fn plan_deltas(jobs: &[DeltaJob], policy: &SchedPolicy) -> Result<DeltaPlan> {
    policy.validate()?;
    let arrays = policy.arrays;
    let mut assignment = vec![0usize; jobs.len()];
    let mut busy = vec![0.0f64; arrays];
    match policy.placement {
        PlacementPolicy::RoundRobin => {
            for (k, job) in jobs.iter().enumerate() {
                let a = k % arrays;
                assignment[k] = a;
                busy[a] += job.est_busy_s;
            }
        }
        // One-shot operand pairs leave the reuse-aware policy nothing to
        // colocate, so both cost-aware policies balance by LPT.
        PlacementPolicy::LoadBalanced | PlacementPolicy::ReuseAware => {
            let mut order: Vec<usize> = (0..jobs.len()).collect();
            order.sort_by(|&x, &y| {
                jobs[y]
                    .est_busy_s
                    .partial_cmp(&jobs[x].est_busy_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.cmp(&y))
            });
            for k in order {
                let a = busy
                    .iter()
                    .enumerate()
                    .min_by(|(_, x), (_, y)| {
                        x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(a, _)| a)
                    .expect("policy validation guarantees at least one array");
                assignment[k] = a;
                busy[a] += jobs[k].est_busy_s;
            }
        }
    }
    Ok(DeltaPlan { arrays, assignment, per_array_busy_s: busy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_arch::{PimConfig, PimEngine};

    fn costs() -> SliceCostModel {
        PimEngine::new(&PimConfig::default()).unwrap().cost_model()
    }

    fn jobs(busy: &[u64]) -> Vec<DeltaJob> {
        let c = costs();
        busy.iter().enumerate().map(|(id, &p)| DeltaJob::price(id, p, p, p, &c)).collect()
    }

    #[test]
    fn pricing_tracks_writes_and_pairs() {
        let c = costs();
        let small = DeltaJob::price(0, 1, 1, 1, &c);
        let large = DeltaJob::price(1, 10, 10, 10, &c);
        assert_eq!(small.write_slices, 2);
        assert_eq!(large.write_slices, 20);
        assert!(large.est_busy_s > small.est_busy_s);
    }

    #[test]
    fn round_robin_deals_in_input_order() {
        let policy = SchedPolicy::with_arrays(3).placement(PlacementPolicy::RoundRobin);
        let plan = plan_deltas(&jobs(&[1, 1, 1, 1, 1]), &policy).unwrap();
        assert_eq!(plan.assignment, vec![0, 1, 2, 0, 1]);
        assert_eq!(plan.jobs_of(0), vec![0, 3]);
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_rounds() {
        // One giant job plus many small ones: LPT isolates the giant.
        let skew = jobs(&[100, 1, 1, 1, 1, 1, 1, 1]);
        let rr = plan_deltas(
            &skew,
            &SchedPolicy::with_arrays(4).placement(PlacementPolicy::RoundRobin),
        )
        .unwrap();
        let lpt = plan_deltas(
            &skew,
            &SchedPolicy::with_arrays(4).placement(PlacementPolicy::LoadBalanced),
        )
        .unwrap();
        assert!(lpt.critical_path_s() <= rr.critical_path_s());
        assert!(lpt.imbalance() >= 1.0);
        // Every job was placed exactly once.
        assert_eq!(lpt.assignment.len(), skew.len());
        assert!(lpt.assignment.iter().all(|&a| a < 4));
        let placed: usize = (0..4).map(|a| lpt.jobs_of(a).len()).sum();
        assert_eq!(placed, skew.len());
    }

    #[test]
    fn reuse_aware_falls_back_to_lpt() {
        let j = jobs(&[5, 3, 8, 1]);
        let a = plan_deltas(
            &j,
            &SchedPolicy::with_arrays(2).placement(PlacementPolicy::LoadBalanced),
        )
        .unwrap();
        let b = plan_deltas(
            &j,
            &SchedPolicy::with_arrays(2).placement(PlacementPolicy::ReuseAware),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_round_plans_cleanly() {
        let plan = plan_deltas(&[], &SchedPolicy::with_arrays(4)).unwrap();
        assert!(plan.assignment.is_empty());
        assert_eq!(plan.critical_path_s(), 0.0);
        assert_eq!(plan.imbalance(), 1.0);
    }

    #[test]
    fn invalid_policy_is_rejected() {
        assert!(plan_deltas(&jobs(&[1]), &SchedPolicy::with_arrays(0)).is_err());
    }
}
