//! Scheduler error type.

use std::fmt;

/// Errors produced while planning a scheduled run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The scheduling policy is inconsistent (e.g. zero arrays).
    InvalidPolicy {
        /// Human-readable reason.
        reason: String,
    },
    /// The matrix was sliced with a different slice size than the engine
    /// is characterized for.
    SliceSizeMismatch {
        /// The engine's slice size in bits.
        engine_bits: u32,
        /// The matrix's slice size in bits.
        matrix_bits: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidPolicy { reason } => {
                write!(f, "invalid scheduling policy: {reason}")
            }
            SchedError::SliceSizeMismatch { engine_bits, matrix_bits } => write!(
                f,
                "slice size mismatch: engine characterized for |S| = {engine_bits} \
                 but matrix sliced at |S| = {matrix_bits}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// Shorthand result type of this crate.
pub type Result<T> = std::result::Result<T, SchedError>;
