//! Property tests of the scheduler invariants: every slice is placed
//! exactly once, and scheduling — any policy, any array count, any host
//! thread count — never changes the triangle count produced by the
//! dataflow.

use proptest::prelude::*;
use tcim_arch::{PimConfig, PimEngine};
use tcim_bitmatrix::{SliceSize, SlicedMatrix};
use tcim_graph::generators::{classic, gnm};
use tcim_graph::{CsrGraph, Orientation};
use tcim_sched::{PlacementPolicy, SchedPolicy, ScheduledRun};

fn engine() -> PimEngine {
    PimEngine::new(&PimConfig::default()).unwrap()
}

fn compress(g: &CsrGraph) -> SlicedMatrix {
    let oriented = Orientation::Natural.orient(g);
    SlicedMatrix::from_adjacency(oriented.rows(), SliceSize::S64).unwrap()
}

/// Reference software baseline: merge-intersect over sorted neighbour
/// lists (independent of every simulated path).
fn software_tc(g: &CsrGraph) -> u64 {
    let mut triangles = 0u64;
    for (u, v) in g.edges() {
        let above = |list: &[u32]| -> usize { list.partition_point(|&w| w <= v) };
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let (mut i, mut j) = (above(nu), above(nv));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    triangles += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    triangles
}

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..250)
            .prop_map(move |edges| CsrGraph::from_edges(n, edges).unwrap())
    })
}

fn policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    proptest::sample::select(&PlacementPolicy::ALL[..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partition invariant: every row job is placed exactly once, so the
    /// scheduled run processes exactly the matrix's edges and pairs.
    #[test]
    fn every_slice_is_placed_exactly_once(
        g in graph_strategy(),
        placement in policy_strategy(),
        arrays in 1usize..20,
    ) {
        let e = engine();
        let m = compress(&g);
        let policy = SchedPolicy { arrays, placement, host_threads: Some(1) };
        let run = ScheduledRun::plan(&e, &m, &policy).unwrap();
        // Placement::validate panics on dropped/duplicated jobs.
        let counts = run.placement().validate();
        prop_assert_eq!(counts.len(), arrays);

        let serial = e.run(&m);
        let report = run.execute();
        prop_assert_eq!(report.stats.edges as usize, m.edge_count());
        prop_assert_eq!(report.stats.and_ops, serial.stats.and_ops);
        prop_assert_eq!(report.stats.bitcount_ops, serial.stats.bitcount_ops);
        // Row slices reload per array at worst, never silently vanish.
        prop_assert!(report.stats.row_slice_writes >= serial.stats.row_slice_writes);
    }

    /// The tentpole equivalence: scheduled == serial == software on
    /// random Erdős–Rényi-style graphs, for every policy and width.
    #[test]
    fn scheduled_equals_serial_equals_software(
        g in graph_strategy(),
        placement in policy_strategy(),
        arrays in 1usize..20,
        threads in 1usize..5,
    ) {
        let e = engine();
        let m = compress(&g);
        let expected = software_tc(&g);
        prop_assert_eq!(e.run(&m).triangles, expected);
        let policy = SchedPolicy { arrays, placement, host_threads: Some(threads) };
        let report = ScheduledRun::plan(&e, &m, &policy).unwrap().execute();
        prop_assert_eq!(report.triangles, expected);
    }

    /// Aggregate report invariants hold on arbitrary inputs.
    #[test]
    fn report_invariants(
        g in graph_strategy(),
        placement in policy_strategy(),
        arrays in 1usize..17,
    ) {
        let e = engine();
        let m = compress(&g);
        let policy = SchedPolicy { arrays, placement, host_threads: Some(2) };
        let report = ScheduledRun::plan(&e, &m, &policy).unwrap().execute();
        prop_assert!(report.imbalance >= 1.0 - 1e-12);
        prop_assert!(report.critical_path_s >= report.max_busy_s);
        prop_assert!(report.max_busy_s >= report.mean_busy_s - 1e-18);
        prop_assert_eq!(report.arrays(), arrays);
        for array in &report.per_array {
            prop_assert!(array.utilization >= 0.0 && array.utilization <= 1.0 + 1e-12);
            prop_assert!(array.busy_s <= report.max_busy_s + 1e-18);
        }
        prop_assert!(
            report.array_speedup() <= arrays as f64 + 1e-9,
            "speedup {} with {} arrays",
            report.array_speedup(),
            arrays
        );
    }

    /// Seeded G(n, m) graphs at every policy/width agree with software.
    #[test]
    fn erdos_renyi_counts_are_schedule_invariant(
        seed in 0u64..500,
        placement in policy_strategy(),
        arrays_idx in 0usize..5,
    ) {
        let arrays = [1usize, 2, 4, 8, 16][arrays_idx];
        let g = gnm(120, 700, seed).unwrap();
        let e = engine();
        let m = compress(&g);
        let expected = software_tc(&g);
        let policy = SchedPolicy { arrays, placement, host_threads: Some(2) };
        let report = ScheduledRun::plan(&e, &m, &policy).unwrap().execute();
        prop_assert_eq!(report.triangles, expected, "seed {} {} x{}", seed, placement, arrays);
    }
}

#[test]
fn classic_graphs_count_exactly_under_every_schedule() {
    let e = engine();
    let cases: Vec<(CsrGraph, u64)> = vec![
        (classic::fig2_example(), 2),
        (classic::complete(20), classic::complete_triangles(20)),
        (classic::wheel(30), 29),
        (classic::star(40), 0),
        (classic::cycle(17), 0),
    ];
    for (g, expected) in cases {
        let m = compress(&g);
        for placement in PlacementPolicy::ALL {
            for arrays in [1usize, 2, 4, 8, 16] {
                let policy = SchedPolicy { arrays, placement, host_threads: Some(2) };
                let report = ScheduledRun::plan(&e, &m, &policy).unwrap().execute();
                assert_eq!(report.triangles, expected, "{placement} x{arrays} on {g:?}");
            }
        }
    }
}
