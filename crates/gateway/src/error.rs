//! Gateway error types: admission rejections and wrapped service
//! failures.

use std::error::Error;
use std::fmt;

use tcim_service::ServiceError;

/// Why the gateway refused to admit a request. Admission errors are
/// *backpressure signals*, not failures: the caller is expected to
/// retry later, slow down, or shed its own load.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The queue (or the submitting tenant's slice of it) is full.
    QueueFull {
        /// The capacity that was exhausted: the global queue bound, or
        /// the tenant's `max_queued` quota when `tenant` is set.
        capacity: usize,
        /// `Some(tenant)` when a per-tenant quota tripped rather than
        /// the global bound.
        tenant: Option<String>,
    },
    /// The request's deadline expired before a worker reached it; it
    /// was shed from the queue unanswered.
    DeadlineExceeded,
    /// The gateway is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity, tenant: Some(tenant) } => {
                write!(f, "tenant {tenant:?} queue full (max_queued = {capacity})")
            }
            AdmissionError::QueueFull { capacity, tenant: None } => {
                write!(f, "admission queue full (capacity = {capacity})")
            }
            AdmissionError::DeadlineExceeded => {
                write!(f, "deadline expired before the request was served")
            }
            AdmissionError::ShuttingDown => write!(f, "gateway is shutting down"),
        }
    }
}

impl Error for AdmissionError {}

/// Any error a gateway-submitted request can resolve to.
#[derive(Debug)]
#[non_exhaustive]
pub enum GatewayError {
    /// Refused (or later shed) by admission control.
    Admission(AdmissionError),
    /// Admitted and dispatched, but the service failed to answer.
    Service(ServiceError),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Admission(e) => write!(f, "admission: {e}"),
            GatewayError::Service(e) => write!(f, "service: {e}"),
        }
    }
}

impl Error for GatewayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GatewayError::Admission(e) => Some(e),
            GatewayError::Service(e) => Some(e),
        }
    }
}

impl From<AdmissionError> for GatewayError {
    fn from(e: AdmissionError) -> Self {
        GatewayError::Admission(e)
    }
}

impl From<ServiceError> for GatewayError {
    fn from(e: ServiceError) -> Self {
        GatewayError::Service(e)
    }
}

/// Convenience alias for gateway results.
pub type Result<T> = std::result::Result<T, GatewayError>;
