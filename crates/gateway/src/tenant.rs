//! Per-tenant admission policy: queue quotas and scheduling weight.

/// A tenant's slice of the gateway: how much of the queue it may
/// occupy and how much of the dispatch bandwidth it receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Scheduling weight (stride scheduling: a tenant with weight 3
    /// is drained ~3× as often as a tenant with weight 1). Clamped to
    /// at least 1.
    pub weight: u64,
    /// Maximum requests this tenant may have queued at once; pushing
    /// past it sheds with
    /// [`AdmissionError::QueueFull`](crate::AdmissionError::QueueFull)
    /// naming the tenant, independent of global queue occupancy.
    pub max_queued: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy { weight: 1, max_queued: usize::MAX }
    }
}

impl TenantPolicy {
    /// A policy with the given weight and no per-tenant queue bound.
    pub fn weighted(weight: u64) -> Self {
        TenantPolicy { weight: weight.max(1), ..TenantPolicy::default() }
    }

    /// Caps this tenant's queued requests.
    #[must_use]
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }
}
