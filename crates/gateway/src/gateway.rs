//! The gateway itself: admission → queue → dispatch waves → tickets.

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tcim_service::{BatchOptions, LiveReadMode, QueryRequest, TcimService};
use tcim_stream::{BatchReport, UpdateBatch};
use tcim_telemetry::MetricsSnapshot;

use crate::error::{AdmissionError, GatewayError};
use crate::metrics::GatewayMetrics;
use crate::queue::{AdmissionQueue, QueuedRequest};
use crate::tenant::TenantPolicy;
use crate::ticket::Ticket;

/// When a live graph's updates become visible to the gateway's
/// snapshot-isolated readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishPolicy {
    /// Epochs publish when the stream layer's `DriftPolicy` folds (and
    /// on explicit [`TcimService::publish`] calls) — updates batch up
    /// invisibly until then. Cheapest; readers lag by at most one
    /// drift window.
    #[default]
    OnDrift,
    /// Every update batch applied through [`Gateway::update`]
    /// immediately folds and publishes the next epoch. Freshest;
    /// pays a fold per batch.
    EveryBatch,
}

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Global admission bound: requests queued across all tenants.
    pub queue_capacity: usize,
    /// Most requests one dispatch wave drains; within a wave,
    /// compatible requests coalesce into shared executions.
    pub max_wave: usize,
    /// Whether dispatch waves coalesce compatible queries (same graph
    /// × same backend override) into one attributed execution.
    pub coalesce: bool,
    /// Background worker threads draining the queue. `0` (the
    /// default) means caller-driven dispatch: call [`Gateway::pump`]
    /// or [`Gateway::run_until_idle`] yourself — the deterministic
    /// mode tests and benchmarks want.
    pub workers: usize,
    /// When live-graph updates become visible to readers.
    pub publish: PublishPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            queue_capacity: 1024,
            max_wave: 64,
            coalesce: true,
            workers: 0,
            publish: PublishPolicy::OnDrift,
        }
    }
}

/// The serving front-end: admission-controlled, tenant-fair,
/// micro-batching ingress over a shared [`TcimService`].
///
/// Requests enter through [`Gateway::submit`], which either admits
/// them into the bounded queue (returning a [`Ticket`]) or sheds them
/// with a typed [`AdmissionError`]. Dispatch drains the queue in
/// weighted tenant order and serves each wave through the service's
/// shared batch path with [`LiveReadMode::Pinned`]: live graphs are
/// answered from their last *published* epoch snapshot, so update
/// batches never block a reader and every response records the epoch
/// it saw.
pub struct Gateway {
    service: Arc<TcimService>,
    config: GatewayConfig,
    queue: AdmissionQueue,
    metrics: GatewayMetrics,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Gateway(depth={}, capacity={}, coalesce={})",
            self.queue.depth(),
            self.config.queue_capacity,
            self.config.coalesce
        )
    }
}

impl Gateway {
    /// A gateway over `service`. Worker threads (if
    /// [`GatewayConfig::workers`] > 0) are not spawned until
    /// [`Gateway::start_workers`].
    pub fn new(service: Arc<TcimService>, config: &GatewayConfig) -> Gateway {
        Gateway {
            service,
            config: config.clone(),
            queue: AdmissionQueue::new(config.queue_capacity.max(1)),
            metrics: GatewayMetrics::new(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The service this gateway fronts.
    pub fn service(&self) -> &TcimService {
        &self.service
    }

    /// Installs (or replaces) `tenant`'s admission policy. Unknown
    /// tenants are admitted under [`TenantPolicy::default`].
    pub fn set_tenant(&self, tenant: &str, policy: TenantPolicy) {
        self.queue.set_policy(tenant, policy);
    }

    /// Admits `request` under `tenant`, returning a [`Ticket`] to wait
    /// on, or sheds it with backpressure.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the global capacity or the
    /// tenant's `max_queued` quota is exhausted (the error names the
    /// tenant in the quota case); [`AdmissionError::ShuttingDown`]
    /// after [`Gateway::shutdown`].
    pub fn submit(
        &self,
        tenant: &str,
        request: QueryRequest,
    ) -> std::result::Result<Ticket, AdmissionError> {
        self.admit(tenant, request, None)
    }

    /// As [`Gateway::submit`] with a deadline: if the request is still
    /// queued `deadline` from now, it is shed (its ticket resolves to
    /// [`AdmissionError::DeadlineExceeded`]) instead of served.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        request: QueryRequest,
        deadline: Duration,
    ) -> std::result::Result<Ticket, AdmissionError> {
        self.admit(tenant, request, Some(Instant::now() + deadline))
    }

    fn admit(
        &self,
        tenant: &str,
        request: QueryRequest,
        deadline: Option<Instant>,
    ) -> std::result::Result<Ticket, AdmissionError> {
        let ticket = Ticket::new();
        let entry = QueuedRequest {
            request,
            deadline,
            enqueued: Instant::now(),
            ticket: ticket.clone(),
            _depth: self.metrics.queue_depth.track(),
        };
        match self.queue.push(tenant, entry) {
            Ok(()) => {
                self.metrics.admitted.incr();
                Ok(ticket)
            }
            Err(e) => {
                match &e {
                    AdmissionError::QueueFull { tenant: Some(_), .. } => {
                        self.metrics.shed_quota.incr()
                    }
                    AdmissionError::QueueFull { tenant: None, .. } => {
                        self.metrics.shed_queue_full.incr()
                    }
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// Drains and serves one dispatch wave (up to
    /// [`GatewayConfig::max_wave`] requests in weighted tenant order),
    /// fulfilling every drained ticket. Safe to call concurrently —
    /// waves interleave but each request lands in exactly one.
    /// Returns the number of requests resolved (served + shed).
    pub fn pump(&self) -> usize {
        let wave = self.queue.take_wave(self.config.max_wave.max(1));
        if wave.is_empty() {
            return 0;
        }
        self.metrics.waves.incr();
        self.metrics.wave_size.observe(wave.len() as u64);
        let now = Instant::now();
        let (live, expired): (Vec<QueuedRequest>, Vec<QueuedRequest>) =
            wave.into_iter().partition(|e| e.deadline.is_none_or(|d| d >= now));
        for entry in &expired {
            self.metrics.shed_deadline.incr();
            entry
                .ticket
                .fulfill(Err(GatewayError::Admission(AdmissionError::DeadlineExceeded)));
        }
        let resolved = expired.len() + live.len();
        if live.is_empty() {
            return resolved;
        }
        let requests: Vec<QueryRequest> = live.iter().map(|e| e.request.clone()).collect();
        let opts = BatchOptions { coalesce: self.config.coalesce, live: LiveReadMode::Pinned };
        let results = self.service.serve_with(&requests, &opts);
        for (entry, result) in live.into_iter().zip(results) {
            self.metrics.served.incr();
            self.metrics.queue_wait.observe_duration(entry.enqueued.elapsed());
            entry.ticket.fulfill(result.map_err(GatewayError::Service));
        }
        resolved
    }

    /// Pumps until the queue is empty; returns the number of requests
    /// resolved. The caller-driven alternative to worker threads.
    pub fn run_until_idle(&self) -> usize {
        let mut resolved = 0;
        loop {
            let n = self.pump();
            if n == 0 {
                return resolved;
            }
            resolved += n;
        }
    }

    /// Spawns [`GatewayConfig::workers`] background threads that drain
    /// the queue until [`Gateway::shutdown`]. No-op when `workers` is
    /// 0 or workers are already running.
    pub fn start_workers(self: &Arc<Self>) {
        let mut workers = self.workers.lock().expect("worker lock is never poisoned");
        if !workers.is_empty() {
            return;
        }
        for _ in 0..self.config.workers {
            let gateway = Arc::clone(self);
            workers.push(std::thread::spawn(move || loop {
                if gateway.queue.wait_for_work(Duration::from_millis(50)) {
                    gateway.pump();
                } else if gateway.queue.is_shutdown() {
                    return;
                }
            }));
        }
    }

    /// Stops admission, drains everything still queued, and joins the
    /// worker threads. Subsequent [`Gateway::submit`]s shed with
    /// [`AdmissionError::ShuttingDown`].
    pub fn shutdown(&self) {
        self.queue.shutdown();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker lock is never poisoned"));
        if handles.is_empty() {
            self.run_until_idle();
        }
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Applies `batch` to the live graph bound to `name` through the
    /// service, honouring the configured [`PublishPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates the service's errors (unknown graph, rejected
    /// updates) as [`GatewayError::Service`].
    pub fn update(
        &self,
        name: &str,
        batch: &UpdateBatch,
    ) -> std::result::Result<BatchReport, GatewayError> {
        let report = self.service.update(name, batch)?;
        if self.config.publish == PublishPolicy::EveryBatch {
            self.service.publish(name)?;
        }
        Ok(report)
    }

    /// Requests admitted but not yet dispatched (all tenants).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Requests queued under `tenant`.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.queue.depth_for(tenant)
    }

    /// A point-in-time snapshot of the gateway's metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The gateway's metrics in Prometheus exposition format (the
    /// service's own registry renders separately via
    /// [`TcimService::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        tcim_telemetry::render_prometheus(&self.metrics.snapshot())
    }
}
