//! The caller's handle on an admitted request.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tcim_service::QueryResponse;

use crate::error::GatewayError;

type Outcome = std::result::Result<QueryResponse, GatewayError>;

struct TicketInner {
    slot: Mutex<Option<Outcome>>,
    ready: Condvar,
}

/// A claim check for one admitted request: block on [`Ticket::wait`]
/// (or poll [`Ticket::try_take`]) for the response. Clones share the
/// same slot; the outcome is taken by whichever handle claims it
/// first.
#[derive(Clone)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.inner.slot.lock().expect("ticket lock is never poisoned").is_some();
        write!(f, "Ticket(ready={filled})")
    }
}

impl Ticket {
    pub(crate) fn new() -> Ticket {
        Ticket {
            inner: Arc::new(TicketInner { slot: Mutex::new(None), ready: Condvar::new() }),
        }
    }

    pub(crate) fn fulfill(&self, outcome: Outcome) {
        let mut slot = self.inner.slot.lock().expect("ticket lock is never poisoned");
        if slot.is_none() {
            *slot = Some(outcome);
            self.inner.ready.notify_all();
        }
    }

    /// Blocks until the request is answered (or shed) and returns the
    /// outcome.
    pub fn wait(&self) -> Outcome {
        let mut slot = self.inner.slot.lock().expect("ticket lock is never poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.inner.ready.wait(slot).expect("ticket lock is never poisoned");
        }
    }

    /// As [`Ticket::wait`] with a bound: `None` if the outcome did not
    /// arrive within `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        let mut slot = self.inner.slot.lock().expect("ticket lock is never poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return Some(outcome);
            }
            let (guard, waited) = self
                .inner
                .ready
                .wait_timeout(slot, timeout)
                .expect("ticket lock is never poisoned");
            slot = guard;
            if waited.timed_out() {
                return slot.take();
            }
        }
    }

    /// Takes the outcome if it already arrived, without blocking.
    pub fn try_take(&self) -> Option<Outcome> {
        self.inner.slot.lock().expect("ticket lock is never poisoned").take()
    }
}
