//! The serving front-end for the TCIM reproduction: admission control,
//! tenant-fair queueing, query micro-batching, and snapshot-isolated
//! live reads over [`tcim_service::TcimService`].
//!
//! `tcim-service` answers queries; this crate decides *which* queries
//! get to run, *when*, and *at whose expense* — the difference between
//! a library and a front door that survives heavy traffic:
//!
//! * [`Gateway`] — the ingress: [`Gateway::submit`] either admits a
//!   request into a bounded queue (returning a [`Ticket`] to wait on)
//!   or sheds it with a typed [`AdmissionError`] — global capacity,
//!   per-tenant quota, queued-past-deadline, or shutdown.
//! * [`TenantPolicy`] — per-tenant weight + `max_queued` quota.
//!   Dispatch drains tenants by stride scheduling: weight-proportional
//!   bandwidth, starvation-free.
//! * Micro-batching — each dispatch wave routes through the service's
//!   shared batch path ([`TcimService::serve_with`]), where requests
//!   against the same graph × backend coalesce into **one** attributed
//!   execution; every response carries
//!   [`BatchProvenance`](tcim_service::BatchProvenance) proving the
//!   saving.
//! * Snapshot isolation — live graphs are read
//!   [`Pinned`](tcim_service::LiveReadMode::Pinned): answers come from
//!   the last *published* [`EpochSnapshot`](tcim_service::EpochSnapshot),
//!   so writers never block readers and every response records the
//!   epoch it saw. [`PublishPolicy`] picks when updates become
//!   visible.
//! * Telemetry — queue depth (RAII-guarded, leak-proof), admitted /
//!   shed / served counters, wave-size and queue-wait histograms, all
//!   Prometheus-renderable.
//!
//! [`TcimService::serve_with`]: tcim_service::TcimService::serve_with
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tcim_core::Query;
//! use tcim_gateway::{Gateway, GatewayConfig, TenantPolicy};
//! use tcim_graph::generators::classic;
//! use tcim_service::{QueryRequest, ServiceConfig, TcimService};
//!
//! let service = Arc::new(TcimService::new(&ServiceConfig::default())?);
//! service.register("wheel", &classic::wheel(64))?;
//!
//! let gateway = Gateway::new(Arc::clone(&service), &GatewayConfig::default());
//! gateway.set_tenant("analytics", TenantPolicy::weighted(2));
//!
//! // A burst of identical-shape queries coalesces into one execution.
//! let tickets: Vec<_> = (0..8)
//!     .map(|_| gateway.submit("analytics", QueryRequest::new("wheel", Query::TotalTriangles)))
//!     .collect::<Result<_, _>>()?;
//! gateway.run_until_idle();
//! for ticket in tickets {
//!     let response = ticket.wait()?;
//!     assert_eq!(response.triangles, 63);
//!     let batch = response.batch.expect("gateway responses carry batch provenance");
//!     assert_eq!(batch.coalesced, 8);
//!     assert_eq!(batch.executions, 1, "one execution answered all eight");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod gateway;
mod metrics;
mod queue;
mod tenant;
mod ticket;

pub use error::{AdmissionError, GatewayError, Result};
pub use gateway::{Gateway, GatewayConfig, PublishPolicy};
pub use tenant::TenantPolicy;
pub use ticket::Ticket;
