//! Gateway observability: admission, shedding, queueing and wave
//! shape, in the same registry/exporter idiom as the service layer.

use tcim_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

/// The gateway's instrument set. Coalescing effectiveness
/// (`tcim_service_batches_total`, `tcim_service_executions_saved_total`
/// …) is accounted where it happens — in the service's shared batch
/// path — so the gateway registry covers what only the gateway knows:
/// admission decisions and queue dynamics.
pub(crate) struct GatewayMetrics {
    pub(crate) registry: MetricsRegistry,
    /// `tcim_gateway_queue_depth` — requests admitted but not yet
    /// dispatched. Held up by a [`GaugeGuard`](tcim_telemetry::GaugeGuard)
    /// per queued entry, so sheds and panics cannot leak it.
    pub(crate) queue_depth: Gauge,
    /// `tcim_gateway_admitted_total`.
    pub(crate) admitted: Counter,
    /// `tcim_gateway_served_total` — admitted requests answered
    /// (successfully or with a service error).
    pub(crate) served: Counter,
    /// `tcim_gateway_shed_queue_full_total` — rejected at the global
    /// capacity bound.
    pub(crate) shed_queue_full: Counter,
    /// `tcim_gateway_shed_quota_total` — rejected at a per-tenant
    /// `max_queued` quota.
    pub(crate) shed_quota: Counter,
    /// `tcim_gateway_shed_deadline_total` — admitted but expired in
    /// the queue before dispatch.
    pub(crate) shed_deadline: Counter,
    /// `tcim_gateway_waves_total` — dispatch waves pumped.
    pub(crate) waves: Counter,
    /// `tcim_gateway_wave_size` — requests per dispatch wave.
    pub(crate) wave_size: Histogram,
    /// `tcim_gateway_queue_wait_nanoseconds` — admission → dispatch
    /// latency per served request.
    pub(crate) queue_wait: Histogram,
}

impl GatewayMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        GatewayMetrics {
            queue_depth: registry
                .gauge("tcim_gateway_queue_depth", "requests admitted but not yet dispatched"),
            admitted: registry
                .counter("tcim_gateway_admitted_total", "requests admitted to the queue"),
            served: registry
                .counter("tcim_gateway_served_total", "admitted requests answered"),
            shed_queue_full: registry.counter(
                "tcim_gateway_shed_queue_full_total",
                "requests rejected at the global queue capacity",
            ),
            shed_quota: registry.counter(
                "tcim_gateway_shed_quota_total",
                "requests rejected at a per-tenant max_queued quota",
            ),
            shed_deadline: registry.counter(
                "tcim_gateway_shed_deadline_total",
                "admitted requests shed because their deadline expired in the queue",
            ),
            waves: registry.counter("tcim_gateway_waves_total", "dispatch waves pumped"),
            wave_size: registry
                .histogram("tcim_gateway_wave_size", "requests per dispatch wave"),
            queue_wait: registry.histogram(
                "tcim_gateway_queue_wait_nanoseconds",
                "admission-to-dispatch latency per served request",
            ),
            registry,
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}
