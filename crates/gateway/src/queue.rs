//! The bounded admission queue: per-tenant FIFOs drained by stride
//! scheduling.
//!
//! Admission is two-tier: a global capacity bound (backpressure for
//! everyone) and per-tenant `max_queued` quotas (one noisy tenant
//! cannot occupy the whole queue). Dispatch is weighted and
//! starvation-free: each tenant carries a stride-scheduling *pass*
//! value advanced by `STRIDE / weight` per dequeued request, and the
//! wave-builder always drains the tenant with the lowest pass — so a
//! weight-3 tenant is served ~3× as often as a weight-1 tenant, and
//! every tenant with queued work is reached in bounded time.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use tcim_service::QueryRequest;
use tcim_telemetry::GaugeGuard;

use crate::error::AdmissionError;
use crate::tenant::TenantPolicy;
use crate::ticket::Ticket;

/// Stride numerator: pass advances by `STRIDE / weight` per dequeue.
const STRIDE: u64 = 1 << 20;

/// One admitted request waiting for dispatch.
pub(crate) struct QueuedRequest {
    pub(crate) request: QueryRequest,
    pub(crate) deadline: Option<Instant>,
    pub(crate) enqueued: Instant,
    pub(crate) ticket: Ticket,
    /// Holds the `tcim_gateway_queue_depth` gauge up for exactly as
    /// long as this entry exists, shed or served.
    pub(crate) _depth: GaugeGuard,
}

struct TenantQueue {
    policy: TenantPolicy,
    pass: u64,
    entries: VecDeque<QueuedRequest>,
}

#[derive(Default)]
struct QueueState {
    tenants: HashMap<String, TenantQueue>,
    total: usize,
    shutdown: bool,
}

/// The bounded, tenant-aware admission queue.
pub(crate) struct AdmissionQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    work: Condvar,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
        }
    }

    /// Installs (or replaces) a tenant's policy.
    pub(crate) fn set_policy(&self, tenant: &str, policy: TenantPolicy) {
        let mut state = self.state.lock().expect("queue lock is never poisoned");
        let floor = min_pass(&state);
        let slot = state.tenants.entry(tenant.to_string()).or_insert(TenantQueue {
            policy,
            pass: floor,
            entries: VecDeque::new(),
        });
        slot.policy = policy;
    }

    /// Admits one request under `tenant`, or explains why not.
    pub(crate) fn push(
        &self,
        tenant: &str,
        entry: QueuedRequest,
    ) -> std::result::Result<(), AdmissionError> {
        let mut state = self.state.lock().expect("queue lock is never poisoned");
        if state.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if state.total >= self.capacity {
            return Err(AdmissionError::QueueFull { capacity: self.capacity, tenant: None });
        }
        let floor = min_pass(&state);
        let slot = state.tenants.entry(tenant.to_string()).or_insert(TenantQueue {
            policy: TenantPolicy::default(),
            pass: floor,
            entries: VecDeque::new(),
        });
        if slot.entries.len() >= slot.policy.max_queued {
            return Err(AdmissionError::QueueFull {
                capacity: slot.policy.max_queued,
                tenant: Some(tenant.to_string()),
            });
        }
        // A tenant re-entering after idling resumes at the current
        // pass floor rather than its stale (lower) pass, so it cannot
        // monopolize the scheduler to "catch up".
        if slot.entries.is_empty() {
            slot.pass = slot.pass.max(floor);
        }
        slot.entries.push_back(entry);
        state.total += 1;
        drop(state);
        self.work.notify_one();
        Ok(())
    }

    /// Drains up to `max` requests in stride order: always the tenant
    /// with the lowest pass among those with queued work, FIFO within
    /// a tenant.
    pub(crate) fn take_wave(&self, max: usize) -> Vec<QueuedRequest> {
        let mut state = self.state.lock().expect("queue lock is never poisoned");
        let mut wave = Vec::new();
        while wave.len() < max && state.total > 0 {
            let next = state
                .tenants
                .iter()
                .filter(|(_, q)| !q.entries.is_empty())
                .min_by_key(|(name, q)| (q.pass, name.as_str()))
                .map(|(name, _)| name.clone())
                .expect("total > 0 implies a non-empty tenant queue");
            let slot = state.tenants.get_mut(&next).expect("tenant just observed");
            let entry = slot.entries.pop_front().expect("tenant queue non-empty");
            slot.pass += STRIDE / slot.policy.weight.max(1);
            state.total -= 1;
            wave.push(entry);
        }
        wave
    }

    /// Blocks until work arrives or the queue shuts down; returns
    /// whether work is available.
    pub(crate) fn wait_for_work(&self, timeout: Duration) -> bool {
        let mut state = self.state.lock().expect("queue lock is never poisoned");
        loop {
            if state.total > 0 {
                return true;
            }
            if state.shutdown {
                return false;
            }
            let (guard, waited) =
                self.work.wait_timeout(state, timeout).expect("queue lock is never poisoned");
            state = guard;
            if waited.timed_out() {
                return state.total > 0;
            }
        }
    }

    /// Stops admission and wakes every waiting worker.
    pub(crate) fn shutdown(&self) {
        let mut state = self.state.lock().expect("queue lock is never poisoned");
        state.shutdown = true;
        drop(state);
        self.work.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.state.lock().expect("queue lock is never poisoned").shutdown
    }

    /// Requests currently queued (all tenants).
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue lock is never poisoned").total
    }

    /// Requests currently queued under `tenant`.
    pub(crate) fn depth_for(&self, tenant: &str) -> usize {
        let state = self.state.lock().expect("queue lock is never poisoned");
        state.tenants.get(tenant).map_or(0, |q| q.entries.len())
    }
}

fn min_pass(state: &QueueState) -> u64 {
    state.tenants.values().filter(|q| !q.entries.is_empty()).map(|q| q.pass).min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_core::Query;
    use tcim_telemetry::MetricsRegistry;

    fn entry(gauge: &tcim_telemetry::Gauge) -> QueuedRequest {
        QueuedRequest {
            request: QueryRequest::new("g", Query::TotalTriangles),
            deadline: None,
            enqueued: Instant::now(),
            ticket: Ticket::new(),
            _depth: gauge.track(),
        }
    }

    #[test]
    fn stride_order_is_weight_proportional_and_starvation_free() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("depth", "test");
        let queue = AdmissionQueue::new(64);
        queue.set_policy("heavy", TenantPolicy::weighted(3));
        queue.set_policy("light", TenantPolicy::weighted(1));
        for _ in 0..8 {
            queue.push("heavy", entry(&gauge)).unwrap();
            queue.push("light", entry(&gauge)).unwrap();
        }
        let wave = queue.take_wave(8);
        assert_eq!(wave.len(), 8);
        // Weight 3 vs 1 over 8 slots: heavy drains ~6, light ~2 — and
        // light is not starved.
        assert_eq!(queue.depth_for("heavy") + queue.depth_for("light"), 8);
        assert!(queue.depth_for("heavy") <= 3, "heavy tenant drained ~3x faster");
        assert!(queue.depth_for("light") >= 5);
        assert!(queue.depth_for("light") < 8, "light tenant progressed");
        assert_eq!(gauge.get(), 16, "guards drop only when entries do");
        drop(wave);
        assert_eq!(gauge.get(), 8);
    }

    #[test]
    fn quotas_and_capacity_shed_with_the_right_error() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("depth", "test");
        let queue = AdmissionQueue::new(3);
        queue.set_policy("capped", TenantPolicy::default().with_max_queued(1));
        queue.push("capped", entry(&gauge)).unwrap();
        let quota = queue.push("capped", entry(&gauge)).unwrap_err();
        assert_eq!(
            quota,
            AdmissionError::QueueFull { capacity: 1, tenant: Some("capped".into()) }
        );
        queue.push("other", entry(&gauge)).unwrap();
        queue.push("other", entry(&gauge)).unwrap();
        let global = queue.push("other", entry(&gauge)).unwrap_err();
        assert_eq!(global, AdmissionError::QueueFull { capacity: 3, tenant: None });
        queue.shutdown();
        let down = queue.push("other", entry(&gauge)).unwrap_err();
        assert_eq!(down, AdmissionError::ShuttingDown);
    }
}
