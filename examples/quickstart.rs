//! Quickstart: walk through the paper's Fig. 2 example end to end with
//! the typed query API, then serve a realistically sized random graph.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcim_repro::bitmatrix::BitMatrix;
use tcim_repro::graph::generators::{classic, gnm};
use tcim_repro::tcim::{baseline, Backend, Query, QueryValue, TcimConfig, TcimPipeline};

fn main() -> tcim_repro::Result<()> {
    // --- Part 1: the Fig. 2 walkthrough ------------------------------
    println!("== Fig. 2 of the paper: 4 vertices, 5 edges ==");
    let graph = classic::fig2_example();

    // The upper-triangular adjacency matrix the paper draws.
    let matrix = BitMatrix::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])?;
    for i in 0..4 {
        println!("  row {i}: {:b}", matrix.row(i));
    }

    // Count with every method the paper discusses.
    println!("  trace(A^3)/6          = {}", matrix.triangle_count_trace());
    println!("  Eq. (5) bitwise       = {}", matrix.triangle_count_bitwise()?);
    println!("  edge-iterator CPU     = {}", baseline::edge_iterator_merge(&graph));

    // Stage 1: prepare once (orient → slice → price; cached by graph).
    let pipeline = TcimPipeline::new(&TcimConfig::default())?;
    let prepared = pipeline.prepare(&graph);

    // Stage 2: the same artifact answers any query shape, on any
    // backend. The total count on the simulated in-MRAM accelerator:
    let total = pipeline.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles)?;
    println!("  TCIM (simulated)      = {}", total.triangles);
    println!(
        "  simulated: {:.2} us, {:.2} nJ, {}",
        total.modelled_time_s.unwrap() * 1e6,
        total.modelled_energy_j.unwrap() * 1e9,
        total.kernel,
    );

    // Per-vertex participation and clustering come from the same
    // kernel — the AND results are read back out and attributed.
    let local = pipeline.query(
        &prepared,
        &Backend::SerialPim,
        &Query::LocalClustering { vertices: None },
    )?;
    for entry in local.value.local_clustering().unwrap() {
        println!(
            "  vertex {}: {} triangles, degree {}, clustering {:.3}",
            entry.vertex, entry.triangles, entry.degree, entry.coefficient
        );
    }

    // --- Part 2: a bigger graph --------------------------------------
    println!("\n== G(n=20k, m=100k) random graph ==");
    let graph = gnm(20_000, 100_000, 42)?;
    let expected = baseline::forward(&graph);
    let prepared = pipeline.prepare(&graph);

    let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles)?;
    assert_eq!(report.triangles, expected, "simulated dataflow must be exact");
    println!("  triangles             = {}", report.triangles);
    println!("  compressed size       = {:.3} MiB", prepared.slice_stats().compressed_mib());
    println!(
        "  valid slices          = {:.3} % of all slices",
        100.0 * prepared.slice_stats().valid_fraction()
    );
    println!(
        "  simulated runtime     = {:.3} ms  ({})",
        report.modelled_time_s.unwrap() * 1e3,
        report.kernel,
    );

    // Global clustering and the most triangle-heavy vertices, answered
    // from the *same* prepared artifact (nothing re-slices).
    let clustering =
        pipeline.query(&prepared, &Backend::CpuForward, &Query::GlobalClustering)?;
    if let QueryValue::GlobalClustering { wedges, transitivity, .. } = clustering.value {
        println!("  wedges                = {wedges}");
        println!("  transitivity          = {transitivity:.6}");
    }
    let top =
        pipeline.query(&prepared, &Backend::CpuForward, &Query::TopKVertices { k: 3 })?;
    for entry in top.value.top_k().unwrap() {
        println!("  top vertex {:>6}     = {} triangles", entry.vertex, entry.triangles);
    }
    Ok(())
}
