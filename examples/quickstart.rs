//! Quickstart: walk through the paper's Fig. 2 example end to end, then
//! run a realistically sized random graph through the accelerator.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcim_repro::bitmatrix::BitMatrix;
use tcim_repro::graph::generators::{classic, gnm};
use tcim_repro::tcim::{baseline, TcimAccelerator, TcimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the Fig. 2 walkthrough ------------------------------
    println!("== Fig. 2 of the paper: 4 vertices, 5 edges ==");
    let graph = classic::fig2_example();

    // The upper-triangular adjacency matrix the paper draws.
    let matrix = BitMatrix::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])?;
    for i in 0..4 {
        println!("  row {i}: {:b}", matrix.row(i));
    }

    // Count with every method the paper discusses.
    println!("  trace(A^3)/6          = {}", matrix.triangle_count_trace());
    println!("  Eq. (5) bitwise       = {}", matrix.triangle_count_bitwise()?);
    println!("  edge-iterator CPU     = {}", baseline::edge_iterator_merge(&graph));

    // And on the simulated in-MRAM accelerator.
    let accelerator = TcimAccelerator::new(&TcimConfig::default())?;
    let report = accelerator.count_triangles(&graph);
    println!("  TCIM (simulated)      = {}", report.triangles);
    println!(
        "  simulated: {:.2} us, {:.2} nJ, {} AND ops, {}",
        report.sim.total_time_s() * 1e6,
        report.sim.total_energy_j() * 1e9,
        report.sim.stats.and_ops,
        report.sim.stats
    );

    // --- Part 2: a bigger graph --------------------------------------
    println!("\n== G(n=20k, m=100k) random graph ==");
    let graph = gnm(20_000, 100_000, 42)?;
    let expected = baseline::forward(&graph);
    let report = accelerator.count_triangles(&graph);
    assert_eq!(report.triangles, expected, "simulated dataflow must be exact");

    println!("  triangles             = {}", report.triangles);
    println!("  compressed size       = {:.3} MiB", report.slice_stats.compressed_mib());
    println!(
        "  valid slices          = {:.3} % of all slices",
        100.0 * report.slice_stats.valid_fraction()
    );
    println!(
        "  simulated runtime     = {:.3} ms  ({:.1}% writes / {:.1}% AND / {:.1}% host)",
        report.sim.total_time_s() * 1e3,
        100.0 * report.sim.latency.write_s / report.sim.total_time_s(),
        100.0 * report.sim.latency.and_s / report.sim.total_time_s(),
        100.0 * report.sim.latency.controller_s / report.sim.total_time_s(),
    );
    println!("  simulated energy      = {:.3} mJ", report.sim.total_energy_j() * 1e3);
    println!(
        "  column-slice traffic  : {:.1}% hit / {:.1}% miss / {:.1}% exchange",
        100.0 * report.sim.stats.hit_rate(),
        100.0 * report.sim.stats.miss_rate(),
        100.0 * report.sim.stats.exchange_rate()
    );
    Ok(())
}
