//! Social-network analysis: the workload class the paper's introduction
//! motivates (clustering coefficient, transitivity, community structure
//! signals) on a heavy-tailed graph, comparing all counting paths.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_network
//! ```

use std::time::Instant;

use tcim_repro::bitmatrix::popcount::PopcountMethod;
use tcim_repro::bitmatrix::SliceSize;
use tcim_repro::graph::datasets::Dataset;
use tcim_repro::graph::Orientation;
use tcim_repro::tcim::software::sliced_software_tc;
use tcim_repro::tcim::{baseline, metrics, TcimAccelerator, TcimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ego-facebook-style stand-in at 50 % published size.
    let dataset = Dataset::by_name("ego-facebook").expect("catalog entry exists");
    let graph = dataset.synthesize(0.5, 7)?;
    println!(
        "social graph: |V| = {}, |E| = {}, {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.degree_stats()
    );

    // --- Count with the three paths of Table V -----------------------
    let t = Instant::now();
    let cpu = baseline::hash_intersect(&graph);
    let cpu_time = t.elapsed();

    let sw = sliced_software_tc(
        &graph,
        SliceSize::S64,
        Orientation::Natural,
        PopcountMethod::Native,
    )?;

    let accelerator = TcimAccelerator::new(&TcimConfig::default())?;
    let report = accelerator.count_triangles(&graph);

    assert_eq!(cpu, sw.triangles);
    assert_eq!(cpu, report.triangles);
    println!("\ntriangles = {cpu} (all three paths agree)");
    println!("  framework-style CPU  : {:>10.3} ms (measured)", cpu_time.as_secs_f64() * 1e3);
    println!(
        "  sliced software      : {:>10.3} ms (measured)",
        sw.count_time.as_secs_f64() * 1e3
    );
    println!(
        "  TCIM                 : {:>10.3} ms (simulated)",
        report.sim.total_time_s() * 1e3
    );

    // --- The metrics the paper says TC unlocks -----------------------
    println!("\nnetwork metrics built on the triangle count:");
    println!("  transitivity ratio           = {:.4}", metrics::transitivity(&graph, cpu));
    println!("  average clustering coeff.    = {:.4}", metrics::average_clustering(&graph));
    println!("  wedges                       = {}", metrics::wedge_count(&graph));

    // Per-vertex counts straight from the accelerator (extra AND-result
    // readouts), cross-checked against the CPU path.
    let local_report = accelerator.count_local_triangles(&graph);
    assert_eq!(local_report.per_vertex, baseline::local_triangles(&graph));
    println!(
        "  per-vertex counts from PIM   : {} result readouts, {:.3} ms simulated",
        local_report.sim.stats.result_readouts,
        local_report.sim.latency.total_s() * 1e3,
    );

    // Top-5 most clustered hubs: candidate community centres.
    let local = local_report.per_vertex;
    let mut hubs: Vec<(u32, u64)> = graph.vertices().map(|v| (v, local[v as usize])).collect();
    hubs.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
    println!("\n  top-5 triangle-dense vertices (community centres):");
    for &(v, t) in hubs.iter().take(5) {
        println!("    vertex {v:>6}: {t:>8} triangles, degree {}", graph.degree(v));
    }
    Ok(())
}
