//! Beyond AND/BitCount: the full in-memory logic family and the
//! SOT-assisted write option.
//!
//! The paper notes that "with different reference sensing current,
//! various logic functions of the enabled word line can be implemented"
//! and that its techniques "can also be applied to other in-memory
//! accelerators". This example demonstrates both claims on the
//! characterized Table I device:
//!
//! * every two-row logic function (AND/OR/NAND/NOR/XOR) plus the
//!   three-row majority gate, evaluated through summed bit-line currents;
//! * bulk bitwise operations over whole 64-bit slices;
//! * the spin-orbit-torque write path implied by Table I's spin Hall
//!   angle, compared head-to-head with the STT write.
//!
//! Run with:
//! ```text
//! cargo run --release --example inmemory_logic
//! ```

use tcim_repro::mtj::sense::SenseAmp;
use tcim_repro::mtj::sot::{compare_write_mechanisms, SotParams};
use tcim_repro::mtj::{MtjCell, MtjParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = MtjCell::characterize(&MtjParams::table_i())?;
    let sa = SenseAmp::from_cell(&cell);

    // --- Two-row logic through the reference branches -----------------
    println!("== Two-row logic truth tables (sensed through references) ==");
    println!("  a b |  AND  OR  NAND NOR  XOR");
    for a in [false, true] {
        for b in [false, true] {
            println!(
                "  {} {} |   {}    {}    {}    {}    {}",
                u8::from(a),
                u8::from(b),
                u8::from(sa.and_output(a, b)),
                u8::from(sa.or_output(a, b)),
                u8::from(sa.nand_output(a, b)),
                u8::from(sa.nor_output(a, b)),
                u8::from(sa.xor_output(a, b)),
            );
        }
    }

    // --- Three-row majority -------------------------------------------
    println!("\n== Three-row majority (the in-memory adder primitive) ==");
    println!("  a b c | MAJ");
    for a in [false, true] {
        for b in [false, true] {
            for c in [false, true] {
                println!(
                    "  {} {} {} |  {}",
                    u8::from(a),
                    u8::from(b),
                    u8::from(c),
                    u8::from(sa.maj_output(a, b, c))
                );
            }
        }
    }

    // --- Bulk slice-wide operations ------------------------------------
    println!("\n== Bulk 64-bit slice operations (bit-parallel across SAs) ==");
    let x: u64 = 0b1100_1010;
    let y: u64 = 0b1010_0110;
    let bulk = |f: &dyn Fn(bool, bool) -> bool| -> u64 {
        (0..64).fold(0u64, |acc, i| {
            let bit = f((x >> i) & 1 == 1, (y >> i) & 1 == 1);
            acc | (u64::from(bit) << i)
        })
    };
    println!("  x         = {x:#010b}");
    println!("  y         = {y:#010b}");
    println!(
        "  x AND y   = {:#010b} (expect {:#010b})",
        bulk(&|a, b| sa.and_output(a, b)),
        x & y
    );
    println!(
        "  x OR  y   = {:#010b} (expect {:#010b})",
        bulk(&|a, b| sa.or_output(a, b)),
        x | y
    );
    println!(
        "  x XOR y   = {:#010b} (expect {:#010b})",
        bulk(&|a, b| sa.xor_output(a, b)),
        x ^ y
    );
    assert_eq!(bulk(&|a, b| sa.and_output(a, b)), x & y);
    assert_eq!(bulk(&|a, b| sa.or_output(a, b)), x | y);
    assert_eq!(bulk(&|a, b| sa.xor_output(a, b)), x ^ y);

    // --- STT vs SOT write ----------------------------------------------
    println!("\n== Write mechanisms (same LLG physics, different torque) ==");
    let (stt, sot) = compare_write_mechanisms(&MtjParams::table_i(), SotParams::default())?;
    println!("                         STT (2-terminal)   SOT (3-terminal)");
    println!(
        "  critical current     {:>10.1} uA      {:>10.1} uA",
        stt.critical_current_a * 1e6,
        sot.critical_current_a * 1e6
    );
    println!(
        "  write latency        {:>10.2} ns      {:>10.2} ns",
        stt.write_latency_s * 1e9,
        sot.write_latency_s * 1e9
    );
    println!(
        "  write energy/bit     {:>10.1} fJ      {:>10.1} fJ",
        stt.write_energy_j * 1e15,
        sot.write_energy_j * 1e15
    );
    println!("  cell area factor            1.0x             {:.1}x", sot.cell_area_factor);
    println!(
        "\n  SOT writes {}x cheaper per bit, paying {:.0}% extra cell area.",
        (stt.write_energy_j / sot.write_energy_j).round(),
        (sot.cell_area_factor - 1.0) * 100.0
    );
    Ok(())
}
