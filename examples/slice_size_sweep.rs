//! Ablation: the slice-size parameter |S| the paper fixes at 64.
//!
//! Sweeps |S| from 16 to 512 bits on a social-style and a road-style
//! graph, reporting the compression/computation trade-off: small slices
//! skip more zeros but multiply bookkeeping; large slices amortize index
//! overhead but drag zero bits into the AND units.
//!
//! Run with:
//! ```text
//! cargo run --release --example slice_size_sweep
//! ```

use tcim_repro::bitmatrix::{SliceSize, SlicedMatrix};
use tcim_repro::graph::datasets::Dataset;
use tcim_repro::graph::{CsrGraph, Orientation};
use tcim_repro::tcim::baseline;

fn sweep(name: &str, graph: &CsrGraph) {
    let expected = baseline::forward(graph);
    println!(
        "\n== {name}: |V| = {}, |E| = {}, triangles = {expected} ==",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>12}",
        "|S|", "valid slices", "valid %", "bytes", "slice pairs"
    );
    let oriented = Orientation::Natural.orient(graph);
    for s in SliceSize::ALL {
        let matrix = SlicedMatrix::from_adjacency(oriented.rows(), s)
            .expect("oriented adjacency is in bounds");
        let stats = matrix.stats();
        // Count the work the PIM engine would do at this |S|.
        let mut pairs = 0u64;
        let mut triangles = 0u64;
        for (i, j) in matrix.edges() {
            for (_, rs, cs) in matrix.row(i).matching_slices(matrix.col(j)).unwrap() {
                pairs += 1;
                for (a, b) in rs.iter().zip(cs) {
                    triangles += u64::from((a & b).count_ones());
                }
            }
        }
        assert_eq!(triangles, expected, "|S| must not change the count");
        println!(
            "{:>6} {:>14} {:>12.4} {:>14} {:>12}",
            s.to_string(),
            stats.valid_slices,
            100.0 * stats.valid_fraction(),
            stats.compressed_bytes,
            pairs
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let social = Dataset::by_name("ego-facebook").unwrap().synthesize(0.25, 5)?;
    sweep("social (ego-facebook style)", &social);

    let road = Dataset::by_name("roadnet-pa").unwrap().synthesize(0.01, 5)?;
    sweep("road (roadNet-PA style)", &road);

    println!(
        "\nReading the table: valid-% falls as |S| shrinks (finer skipping) while \
         the byte size balances payload against the 4-byte index — the paper's \
         |S| = 64 sits at the knee for sparse graphs."
    );
    Ok(())
}
