//! Beyond triangles on the same kernels: k-truss decomposition and
//! 4-clique counting, answered by iterated support peeling and chained
//! AND+BitCount passes over the prepared sliced rows — never a
//! re-slice — then cross-checked against the naive reference oracle.
//!
//! Run with:
//! ```text
//! cargo run --release --example ktruss
//! ```

use tcim_repro::graph::generators::{barabasi_albert, classic};
use tcim_repro::graph::oracle;
use tcim_repro::tcim::{Backend, Query, SchedPolicy, TcimConfig, TcimPipeline};

fn main() -> tcim_repro::Result<()> {
    let pipeline = TcimPipeline::new(&TcimConfig::default())?;

    // --- A hand-checkable fixture ------------------------------------
    // K6: every edge closes 4 triangles, the whole graph is the
    // 6-truss, and the 4-clique census is C(6,4) = 15.
    println!("== K6 (hand-checkable) ==");
    let k6 = classic::complete(6);
    let prepared = pipeline.prepare(&k6);
    let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::KTruss { k: 4 })?;
    let edges = report.value.trussness().expect("k-truss answers carry trussness");
    println!(
        "  {} edges, trussness {} everywhere, {} members in the 4-truss",
        edges.len(),
        edges[0].trussness,
        report.value.truss_members().expect("k-truss answers carry members").len(),
    );
    let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::FourCliques)?;
    let (total, _) = report.value.four_cliques().expect("4-clique answers carry counts");
    println!("  {total} four-cliques (C(6,4) = 15)");

    // --- A power-law graph, decomposed and cross-checked -------------
    let g = barabasi_albert(800, 6, 7)?;
    let prepared = pipeline.prepare(&g);
    println!("\n== Barabási–Albert n=800 m=6 ==");
    for backend in [
        Backend::SerialPim,
        Backend::ScheduledPim(SchedPolicy::with_arrays(4)),
        Backend::CpuMerge,
    ] {
        let report = pipeline.query(&prepared, &backend, &Query::KTruss { k: 5 })?;
        let edges = report.value.trussness().unwrap();
        let max_truss = edges.iter().map(|e| e.trussness).max().unwrap_or(2);
        let members = report.value.truss_members().unwrap().len();
        println!(
            "  {:>16}: {} edges peeled to max trussness {max_truss}, \
             {members} edges in the 5-truss, {} kernels, {} slice pairs",
            report.backend,
            edges.len(),
            report.kernel.kernel_invocations,
            report.kernel.slice_pairs,
        );
        if let (Some(t), Some(e)) = (report.modelled_time_s, report.modelled_energy_j) {
            println!("  {:>16}  modelled {:.3} ms / {:.3} mJ", "", t * 1e3, e * 1e3);
        }
    }

    let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::FourCliques)?;
    let (total, per_vertex) = report.value.four_cliques().unwrap();
    let busiest = per_vertex
        .iter()
        .enumerate()
        .max_by_key(|&(v, &c)| (c, std::cmp::Reverse(v)))
        .map(|(v, &c)| (v, c))
        .unwrap();
    println!("  4-cliques: {total} total; vertex {} sits in {} of them", busiest.0, busiest.1);

    // --- The differential oracle agrees ------------------------------
    let truss = oracle::trussness(&g);
    let (k4, _) = oracle::four_cliques(&g);
    let engine = pipeline.query(&prepared, &Backend::SerialPim, &Query::KTruss { k: 5 })?;
    let agree = engine
        .value
        .trussness()
        .unwrap()
        .iter()
        .zip(&truss)
        .all(|(e, &(u, v, t))| (e.u, e.v, e.trussness) == (u, v, t));
    println!("\n  oracle agreement: trussness {agree}, four-cliques {}", k4 == total);
    assert!(agree && k4 == total, "engine and oracle must agree");
    Ok(())
}
