//! Road-network workload under memory pressure: a roadNet-style graph
//! driven through a deliberately small computational array so the LRU
//! data-exchange machinery of §IV-A is visible, comparing replacement
//! policies.
//!
//! Run with:
//! ```text
//! cargo run --release --example road_network
//! ```

use tcim_repro::arch::{PimConfig, ReplacementPolicy};
use tcim_repro::graph::datasets::Dataset;
use tcim_repro::tcim::{baseline, TcimAccelerator, TcimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A roadNet-PA-style stand-in at 2 % published size.
    let dataset = Dataset::by_name("roadnet-pa").expect("catalog entry exists");
    let graph = dataset.synthesize(0.02, 3)?;
    let expected = baseline::forward(&graph);
    println!(
        "road graph: |V| = {}, |E| = {}, triangles = {}, {}",
        graph.vertex_count(),
        graph.edge_count(),
        expected,
        graph.degree_stats()
    );

    // Shrink the data buffer until the working set no longer fits, then
    // compare the paper's LRU with FIFO and Random replacement.
    println!(
        "\n{:<10} {:>12} {:>8} {:>8} {:>10} {:>12}",
        "policy", "capacity", "hit %", "miss %", "exch %", "writes"
    );
    for capacity in [50_000usize, 5_000, 500] {
        for policy in
            [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]
        {
            let config = TcimConfig {
                pim: PimConfig {
                    replacement: policy,
                    capacity_slices_override: Some(capacity),
                    ..PimConfig::default()
                },
                ..TcimConfig::default()
            };
            let accelerator = TcimAccelerator::new(&config)?;
            let report = accelerator.count_triangles(&graph);
            assert_eq!(report.triangles, expected, "policy must not change the count");
            let s = report.sim.stats;
            println!(
                "{:<10} {:>12} {:>8.1} {:>8.1} {:>10.1} {:>12}",
                format!("{policy:?}"),
                capacity,
                100.0 * s.hit_rate(),
                100.0 * s.miss_rate(),
                100.0 * s.exchange_rate(),
                s.total_writes()
            );
        }
    }

    println!(
        "\nNote: road networks touch each column slice few times, so shrinking \
         the buffer converts hits into exchanges — exactly the Fig. 5 regime \
         of the paper's three largest graphs."
    );
    Ok(())
}
