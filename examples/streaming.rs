//! The dynamic-graph subsystem: maintain a live triangle count under
//! batches of edge insertions and deletions, with per-update PIM delta
//! kernels and drift-triggered folds back into the prepared pipeline.
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming
//! ```

use tcim_repro::graph::generators::barabasi_albert;
use tcim_repro::stream::{DriftPolicy, DynamicGraph, StreamConfig, Update, UpdateBatch};
use tcim_repro::tcim::baseline;

/// Deterministic update stream: a mix of fresh chords and deletions of
/// existing edges, biased to stay valid but with a few adversarial
/// updates left in.
fn synthesize_batch(dg: &DynamicGraph, seed: &mut u64, len: usize) -> UpdateBatch {
    let n = dg.vertex_count() as u64;
    let mut batch = UpdateBatch::new();
    for _ in 0..len {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((*seed >> 11) % n) as u32;
        let v = ((*seed >> 37) % n) as u32;
        if seed.is_multiple_of(3) {
            // Delete a live edge when the picked vertex has one.
            let nbrs = dg.neighbors(u);
            if nbrs.is_empty() {
                batch.push(Update::Delete(u, v));
            } else {
                batch.push(Update::Delete(u, nbrs[(*seed >> 7) as usize % nbrs.len()]));
            }
        } else {
            batch.push(Update::Insert(u, v));
        }
    }
    batch
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = barabasi_albert(2_000, 6, 7)?;
    println!(
        "== Barabási–Albert graph under write traffic: |V| = {}, |E| = {} ==",
        graph.vertex_count(),
        graph.edge_count()
    );

    let config = StreamConfig {
        drift: DriftPolicy {
            max_touched_fraction: Some(0.10),
            max_valid_slice_drift: Some(0.5),
            max_updates: None,
        },
        verify_on_fold: true,
        ..StreamConfig::default()
    };
    let mut dg = DynamicGraph::new(&graph, config)?;
    println!(
        "epoch 0 prepared: {} triangles, {} valid slices across dynamic rows\n",
        dg.triangles(),
        dg.valid_slices()
    );

    println!("== streaming batches (update → delta kernel → fold on drift) ==");
    let mut seed = 0xfeed_5eed_u64;
    for batch_no in 0..8 {
        let batch = synthesize_batch(&dg, &mut seed, 120);
        let outcome = dg.apply_batch(&batch)?;
        println!(
            "batch {batch_no}: {:>3} applied / {:>2} rejected in {} round(s), \
             net Δ = {:+}, TC = {}{}",
            outcome.applied(),
            outcome.rejected.len(),
            outcome.rounds,
            outcome.net_delta(),
            outcome.triangles,
            if outcome.folded {
                format!("  → folded into epoch {}", dg.epoch())
            } else {
                String::new()
            }
        );
    }

    // The maintained count is exact: recount the live snapshot.
    let recount = baseline::edge_iterator_merge(&dg.snapshot());
    assert_eq!(dg.triangles(), recount);
    println!("\nrecount of the live snapshot agrees: {recount} triangles");

    let report = dg.report();
    println!("\n== cumulative stream report ==");
    println!("{report}");
    println!(
        "prepared-cache after {} fold(s): {} artifact(s), {} hit(s), {} miss(es)",
        report.rebuilds,
        dg.pipeline().cache().len(),
        dg.pipeline().cache().hits(),
        dg.pipeline().cache().misses()
    );
    Ok(())
}
