//! Query EXPLAIN end to end: plan a query before running it, serve it
//! with per-response explain + slow-query capture enabled, then export
//! the traced spans as a chrome://tracing file — validated by
//! re-parsing it with the workspace's own JSON parser.
//!
//! Run with:
//! ```text
//! cargo run --release --example explain [TRACE_PATH]
//! ```
//!
//! `TRACE_PATH` defaults to `explain-trace.json`; open it in
//! chrome://tracing or https://ui.perfetto.dev to see one track per
//! query.

use std::time::Duration;

use tcim_repro::graph::generators::{barabasi_albert, rmat, RmatParams};
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::tcim::{Backend, Query, ShardPolicy};
use tcim_repro::telemetry::json;
use tcim_repro::telemetry::{chrome_trace, recent_spans, set_flight_recorder};

fn main() -> tcim_repro::Result<()> {
    let trace_path =
        std::env::args().nth(1).unwrap_or_else(|| "explain-trace.json".to_string());

    // Retain spans for the chrome-trace export at the end.
    set_flight_recorder(2048);

    // Diagnostics all the way up: per-query profiling, explain on every
    // response, and slow-query capture with a deliberately hair-trigger
    // threshold so this example always has records to show.
    let config = ServiceConfig {
        profile_queries: true,
        explain_queries: true,
        slow_query_threshold: Some(Duration::from_micros(50)),
        slow_query_capacity: 16,
        shard_slice_budget: Some(4_096),
        ..ServiceConfig::default()
    };
    let service = TcimService::new(&config)?;
    service.register("social", &barabasi_albert(2_000, 8, 7)?)?;
    service.register("power-law", &rmat(11, 16_000, RmatParams::default(), 23)?)?;

    // --- Plan without executing --------------------------------------
    // The same backend auto-selection a real request gets: "power-law"
    // busts the slice budget, so the plan goes sharded.
    println!("== explain (plan only, nothing executed) ==");
    let plan = service.explain("power-law", &Query::TotalTriangles)?;
    print!("{plan}");

    // --- Execute with explain attached -------------------------------
    println!("\n== served responses carry the plan + measurement ==");
    let requests = [
        QueryRequest::new("social", Query::TotalTriangles),
        QueryRequest::new("power-law", Query::TotalTriangles),
        QueryRequest::new("social", Query::PerVertexTriangles)
            .with_backend(Backend::Sharded(ShardPolicy::with_shards(4))),
    ];
    for request in &requests {
        let response = service.query_with(request)?;
        let explain = response.explain.as_ref().expect("explain_queries is on");
        println!(
            "  {:<10} {:<18} via {:<38} census {}",
            response.graph,
            response.query.to_string(),
            response.backend,
            match explain.census_matches() {
                Some(true) => "exact match",
                Some(false) => "MISMATCH",
                None => "unmeasured",
            }
        );
    }

    // --- Slow-query forensics ----------------------------------------
    println!("\n== slow-query log ({} captured) ==", service.slow_queries().total());
    if let Some(record) = service.slow_queries().drain().into_iter().next_back() {
        print!("{record}");
    }

    // --- Chrome trace export -----------------------------------------
    let spans = recent_spans();
    let trace = chrome_trace::render_spans(spans.iter().copied());
    // The export must round-trip through our own parser: a malformed
    // document here is a bug, not a formatting nit.
    let doc = json::parse(&trace).expect("chrome trace round-trips through the json parser");
    let events = doc
        .get("traceEvents")
        .and_then(tcim_repro::telemetry::Json::as_array)
        .expect("trace document carries traceEvents");
    std::fs::write(&trace_path, &trace).expect("trace file is writable");
    println!(
        "\n== chrome trace ==\n  {} spans -> {} events -> {trace_path} ({} bytes)",
        spans.len(),
        events.len(),
        trace.len()
    );
    println!("  open in chrome://tracing or https://ui.perfetto.dev");

    set_flight_recorder(0);
    Ok(())
}
