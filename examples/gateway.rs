//! The serving front-end end to end: a gateway over a multi-graph
//! service absorbing a compatible query burst (micro-batched into one
//! attributed execution), tenant-fair scheduling under a flood, and
//! snapshot-isolated reads of a live graph while it churns.
//!
//! Run with:
//! ```text
//! cargo run --release --example gateway
//! ```

use std::sync::Arc;

use tcim_repro::gateway::{Gateway, GatewayConfig, PublishPolicy, TenantPolicy};
use tcim_repro::graph::generators::{barabasi_albert, gnm};
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::stream::UpdateBatch;
use tcim_repro::tcim::Query;

fn main() -> tcim_repro::Result<()> {
    let service = Arc::new(TcimService::new(&ServiceConfig::default())?);
    service.register("social", &barabasi_albert(1_500, 8, 7)?)?;
    service.register_live("feed", &gnm(800, 6_000, 42)?)?;

    let gateway = Arc::new(Gateway::new(
        Arc::clone(&service),
        &GatewayConfig { publish: PublishPolicy::EveryBatch, ..GatewayConfig::default() },
    ));
    gateway.set_tenant("analytics", TenantPolicy::weighted(3));
    gateway.set_tenant("adhoc", TenantPolicy::weighted(1).with_max_queued(8));

    // --- Micro-batching: one execution answers a whole burst ---------
    println!("== coalesced burst ==");
    let burst = 16;
    let tickets: Vec<_> = (0..burst)
        .map(|i| {
            let query = if i % 2 == 0 {
                Query::PerVertexTriangles
            } else {
                Query::TopKVertices { k: 5 }
            };
            gateway.submit("analytics", QueryRequest::new("social", query))
        })
        .collect::<Result<_, _>>()
        .map_err(tcim_repro::gateway::GatewayError::Admission)?;
    gateway.run_until_idle();

    let reference =
        service.serve(&[QueryRequest::new("social", Query::PerVertexTriangles)]).remove(0)?;
    let mut executions = std::collections::HashMap::new();
    let mut answered = 0u64;
    for ticket in tickets {
        let response = ticket.wait()?;
        answered += 1;
        let batch = response.batch.expect("gateway responses carry batch provenance");
        executions.insert(batch.batch_id, batch.executions);
        if response.query == Query::PerVertexTriangles {
            assert_eq!(response.value, reference.value, "coalesced == unbatched, bit for bit");
        }
    }
    let ran: u64 = executions.values().sum();
    println!("  {answered} queries answered by {ran} attributed execution(s)");
    assert!(ran < answered, "micro-batching must save executions");

    // --- Snapshot isolation: readers never block on the writer -------
    println!("\n== snapshot-isolated live reads ==");
    let before = service.pinned_snapshot("feed")?;
    let mut batch = UpdateBatch::new();
    for v in 0..30u32 {
        batch.insert(v, 400 + v);
    }
    gateway.update("feed", &batch)?;
    let after = service.pinned_snapshot("feed")?;
    let ticket = gateway
        .submit("analytics", QueryRequest::new("feed", Query::TotalTriangles))
        .map_err(tcim_repro::gateway::GatewayError::Admission)?;
    gateway.run_until_idle();
    let response = ticket.wait()?;
    println!(
        "  epoch {} ({} triangles) -> epoch {} ({} triangles); reader pinned to epoch {}",
        before.epoch,
        before.triangles,
        after.epoch,
        after.triangles,
        response.epoch.expect("pinned reads record their epoch"),
    );
    assert_eq!(response.epoch, Some(after.epoch));
    assert_eq!(response.triangles, after.triangles);

    // --- Backpressure: quotas shed, weights share ---------------------
    println!("\n== admission control ==");
    let mut admitted = 0;
    let mut shed = 0;
    for _ in 0..12 {
        match gateway.submit("adhoc", QueryRequest::new("social", Query::TotalTriangles)) {
            Ok(_) => admitted += 1,
            Err(e) => {
                if shed == 0 {
                    println!("  shed: {e}");
                }
                shed += 1;
            }
        }
    }
    println!("  adhoc tenant: {admitted} admitted, {shed} shed at its max_queued quota");
    assert_eq!((admitted, shed), (8, 4));
    gateway.run_until_idle();

    println!("\n== gateway metrics ==");
    for line in gateway.render_prometheus().lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }
    gateway.shutdown();
    Ok(())
}
