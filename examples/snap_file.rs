//! Drop-in path for the real SNAP datasets.
//!
//! The reproduction ships synthetic stand-ins, but the loaders accept the
//! original files unchanged. Point this example at any SNAP edge list
//! (e.g. `roadNet-PA.txt` from <https://snap.stanford.edu/data/>) or a
//! SuiteSparse MatrixMarket mirror:
//!
//! ```text
//! cargo run --release --example snap_file -- path/to/roadNet-PA.txt
//! ```
//!
//! Without an argument it falls back to a synthesized stand-in, so the
//! example always runs.

use std::fs::File;
use std::path::Path;

use tcim_repro::graph::components::largest_component;
use tcim_repro::graph::datasets::Dataset;
use tcim_repro::graph::io::{read_matrix_market, read_snap_edges};
use tcim_repro::graph::CsrGraph;
use tcim_repro::tcim::verify::cross_check;
use tcim_repro::tcim::{TcimAccelerator, TcimConfig};

fn load(path: &str) -> Result<CsrGraph, Box<dyn std::error::Error>> {
    let file = File::open(path)?;
    let graph = if Path::new(path).extension().is_some_and(|e| e == "mtx") {
        read_matrix_market(file)?
    } else {
        read_snap_edges(file)?
    };
    Ok(graph)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path} …");
            let raw = load(&path)?;
            println!("  parsed: |V| = {}, |E| = {}", raw.vertex_count(), raw.edge_count());
            // SNAP's published statistics refer to the largest connected
            // component; apply the same preprocessing.
            let lcc = largest_component(&raw);
            println!(
                "  largest component: |V| = {}, |E| = {}",
                lcc.vertex_count(),
                lcc.edge_count()
            );
            lcc
        }
        None => {
            println!("no file given — synthesizing the roadNet-PA stand-in at 5% scale");
            println!("(pass a SNAP .txt or MatrixMarket .mtx file to use real data)");
            Dataset::by_name("roadnet-pa").unwrap().synthesize(0.05, 42)?
        }
    };

    // Cross-check all five counting paths on this graph.
    let report = cross_check(&graph)?;
    print!("\n{report}");
    assert!(report.consistent());

    // And the full accelerator report.
    let acc = TcimAccelerator::new(&TcimConfig::default())?;
    let r = acc.count_triangles(&graph);
    println!("\nTCIM simulation:");
    println!("  triangles        = {}", r.triangles);
    println!("  compressed size  = {:.3} MiB", r.slice_stats.compressed_mib());
    println!("  valid slices     = {:.4} %", 100.0 * r.slice_stats.valid_fraction());
    println!("  simulated time   = {:.3} ms", r.sim.total_time_s() * 1e3);
    println!("  simulated energy = {:.3} mJ", r.sim.total_energy_j() * 1e3);
    println!(
        "  col traffic      = {:.1}% hit / {:.1}% miss / {:.1}% exchange",
        100.0 * r.sim.stats.hit_rate(),
        100.0 * r.sim.stats.miss_rate(),
        100.0 * r.sim.stats.exchange_rate()
    );
    Ok(())
}
