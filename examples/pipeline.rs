//! The staged pipeline: prepare a graph once, execute it on every
//! backend, and amortize preparation across repeated queries via the
//! prepared-graph cache.
//!
//! Run with:
//! ```text
//! cargo run --release --example pipeline
//! ```

use tcim_repro::graph::generators::barabasi_albert;
use tcim_repro::tcim::{Backend, TcimConfig, TcimPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = barabasi_albert(5_000, 8, 42)?;
    println!(
        "== Barabási–Albert graph: |V| = {}, |E| = {} ==",
        graph.vertex_count(),
        graph.edge_count()
    );

    // Stage 1: prepare once — orient, slice, measure, price.
    let pipeline = TcimPipeline::new(&TcimConfig::default())?;
    let prepared = pipeline.prepare(&graph);
    println!(
        "prepared in {:.3} ms: {:.3} MiB compressed, {} slice pairs priced at {:.3e} s busy",
        prepared.prepare_time().as_secs_f64() * 1e3,
        prepared.slice_stats().compressed_mib(),
        prepared.pricing().slice_pairs,
        prepared.pricing().est_busy_s,
    );

    // Stage 2: the same artifact runs on every backend.
    println!("\n== backend dispatch over one prepared artifact ==");
    for spec in Backend::default_suite() {
        let report = pipeline.execute(&prepared, &spec)?;
        println!("  {report}");
    }

    // Repeated queries hit the cache: nothing is re-oriented or
    // re-sliced.
    println!("\n== amortization across repeated queries ==");
    for _ in 0..4 {
        pipeline.count(&graph, &Backend::SerialPim)?;
    }
    println!(
        "cache after 4 repeated counts: {} hit(s), {} miss(es)",
        pipeline.cache().hits(),
        pipeline.cache().misses()
    );
    Ok(())
}
