//! Hierarchical sparse bit-rows: density-adaptive row encoding and the
//! skip-empty AND+BitCount kernels it unlocks.
//!
//! Prepares the same power-law graph under forced-dense, forced-sparse
//! and automatic encoding policies, then compares the dispatch census
//! (`KernelStats`), modelled accelerator time and compressed footprint
//! — the answers stay bit-identical, only the work accounting moves.
//!
//! Run with:
//! ```text
//! cargo run --release --example sparse_rows
//! ```

use tcim_repro::bitmatrix::{EncodingPolicy, RowEncoding};
use tcim_repro::graph::generators::{barabasi_albert, gnm, rmat, RmatParams};
use tcim_repro::tcim::{Backend, Query, TcimConfig, TcimPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = rmat(9, 2600, RmatParams::default(), 17)?;
    println!(
        "== R-MAT graph: |V| = {}, |E| = {} ==",
        graph.vertex_count(),
        graph.edge_count()
    );

    // One pipeline per policy: the encoding is part of the prepared
    // artifact (and of its cache key), chosen once per graph.
    println!("\n== encoding policies over one graph ==");
    let policies = [
        ("force-dense", EncodingPolicy::ForceDense),
        ("force-sparse", EncodingPolicy::ForceSparse),
        ("auto (default)", EncodingPolicy::default()),
    ];
    let mut reports = Vec::new();
    for (name, encoding) in policies {
        let pipeline = TcimPipeline::new(&TcimConfig { encoding, ..TcimConfig::default() })?;
        let prepared = pipeline.prepare(&graph);
        let report = pipeline.query(&prepared, &Backend::SerialPim, &Query::TotalTriangles)?;
        println!(
            "  {name:15} -> {:?} rows ({:.1}% slices valid): {} triangles, \
             {} kernels, {} pairs ANDed, {} pairs skipped, {} bytes, modelled {:.3e} s",
            prepared.encoding(),
            prepared.slice_stats().valid_fraction() * 100.0,
            report.triangles,
            report.kernel.kernel_invocations,
            report.kernel.slice_pairs,
            report.kernel.blocks_skipped,
            report.compressed_bytes,
            report.modelled_time_s.unwrap_or(0.0),
        );
        reports.push(report);
    }

    // The sparse byte-mask filter is exact: every pair it skips was a
    // mutually valid pair of the dense walk, proven all-zero before the
    // AND — so visited + skipped partitions the dense census and the
    // count never moves.
    let (dense, sparse) = (&reports[0], &reports[1]);
    assert_eq!(dense.triangles, sparse.triangles);
    assert_eq!(
        sparse.kernel.slice_pairs + sparse.kernel.blocks_skipped,
        dense.kernel.slice_pairs,
    );
    println!(
        "\nsparse visited {} + skipped {} = dense {} pairs; saved {} kernel dispatches",
        sparse.kernel.slice_pairs,
        sparse.kernel.blocks_skipped,
        dense.kernel.slice_pairs,
        dense.kernel.kernel_invocations - sparse.kernel.kernel_invocations,
    );

    // The automatic policy measures density at prepare time: this
    // power-law graph sits under the default 25% threshold and resolves
    // sparse; a denser Erdős–Rényi graph stays dense.
    println!("\n== automatic resolution across graphs ==");
    let auto = TcimPipeline::new(&TcimConfig::default())?;
    for (name, g) in [
        ("rmat (power-law)", graph),
        ("barabasi-albert", barabasi_albert(600, 5, 7)?),
        ("erdos-renyi", gnm(640, 4800, 7)?),
    ] {
        let prepared = auto.prepare(&g);
        println!(
            "  {name:18} {:.1}% valid slices -> {:?}",
            prepared.slice_stats().valid_fraction() * 100.0,
            prepared.encoding(),
        );
    }

    // Per-graph override when the measured default is wrong for the
    // workload: force an encoding without touching the threshold.
    let forced = TcimPipeline::new(&TcimConfig {
        encoding: EncodingPolicy::force(RowEncoding::Dense),
        ..TcimConfig::default()
    })?;
    let prepared = forced.prepare(&rmat(9, 2600, RmatParams::default(), 17)?);
    assert_eq!(prepared.encoding(), RowEncoding::Dense);
    println!(
        "\nforced override: rmat prepared as {:?} despite its density",
        prepared.encoding()
    );
    Ok(())
}
