//! Device-to-architecture characterization sweep: everything §V-A's
//! co-simulation produces, from MTJ switching dynamics to array-level
//! costs and sense-margin yield.
//!
//! Run with:
//! ```text
//! cargo run --release --example device_analysis
//! ```

use tcim_repro::mtj::llg::LlgSolver;
use tcim_repro::mtj::sense::SenseAmp;
use tcim_repro::mtj::variation::{run_variation, VariationConfig};
use tcim_repro::mtj::{MtjCell, MtjParams};
use tcim_repro::nvsim::{ArrayModel, ArrayOrganization};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = MtjParams::table_i();
    let cell = MtjCell::characterize(&params)?;

    println!("== MTJ cell (Table I parameters) ==");
    println!(
        "  R_P = {:.0} ohm, R_AP = {:.0} ohm (TMR at read bias {:.2})",
        cell.r_p_ohm,
        cell.r_ap_ohm,
        cell.tmr_at_read()
    );
    println!(
        "  I_c0 = {:.1} uA, thermal stability = {:.0}",
        cell.critical_current_a * 1e6,
        cell.thermal_stability
    );

    // --- Switching time vs write current (LLG) -----------------------
    let solver = LlgSolver::new(&params)?;
    println!("\n== LLG switching time vs overdrive ==");
    println!("  {:>10} {:>12}", "I / I_c0", "t_switch");
    for overdrive in [1.2, 1.5, 2.0, 3.0, 4.0, 6.0] {
        let i = overdrive * solver.critical_current_a();
        match solver.switching_time_s(i) {
            Some(t) => println!("  {:>10.1} {:>10.2} ns", overdrive, t * 1e9),
            None => println!("  {:>10.1} {:>12}", overdrive, "no switch"),
        }
    }

    // --- Sense margins and references (Fig. 4) -----------------------
    let sa = SenseAmp::from_cell(&cell);
    let read = sa.read_margin();
    let and = sa.and_margin();
    println!("\n== Sense references (Fig. 4) ==");
    println!(
        "  READ: I_P = {:.1} uA, I_AP = {:.1} uA, ref = {:.1} uA, margin = {:.1} uA",
        read.i_high_a * 1e6,
        read.i_low_a * 1e6,
        read.i_ref_a * 1e6,
        read.margin_a * 1e6
    );
    println!(
        "  AND : I(1,1) = {:.1} uA, I(1,0) = {:.1} uA, ref = {:.1} uA, margin = {:.1} uA",
        and.i_high_a * 1e6,
        and.i_low_a * 1e6,
        and.i_ref_a * 1e6,
        and.margin_a * 1e6
    );
    println!(
        "  R_ref-AND = {:.0} ohm  (between R_P||P = {:.0} and R_P||AP = {:.0})",
        sa.and_reference_ohm(),
        cell.r_p_ohm / 2.0,
        cell.r_p_ohm * cell.r_ap_ohm / (cell.r_p_ohm + cell.r_ap_ohm)
    );

    // --- Monte-Carlo yield vs process variation ----------------------
    println!("\n== Sense yield vs resistance variation (10k trials each) ==");
    println!("  {:>8} {:>12} {:>12}", "sigma %", "READ yield", "AND yield");
    for sigma in [0.01, 0.02, 0.04, 0.08, 0.12] {
        let report = run_variation(
            &cell,
            &VariationConfig { resistance_sigma: sigma, trials: 10_000, seed: 9 },
        );
        println!(
            "  {:>8.0} {:>11.2}% {:>11.2}%",
            sigma * 100.0,
            100.0 * report.read_yield(),
            100.0 * report.and_yield()
        );
    }

    // --- Array-level roll-up (NVSim-style) ---------------------------
    println!("\n== 16 MB computational array (45 nm) ==");
    let array = ArrayModel::characterize(&cell, &ArrayOrganization::tcim_16mb())?;
    println!("  read/AND latency   = {:.2} ns", array.and_latency_s * 1e9);
    println!("  write latency      = {:.2} ns", array.write_latency_s * 1e9);
    println!("  AND energy (64b)   = {:.2} pJ", array.and_slice_energy_j(64) * 1e12);
    println!("  write energy (64b) = {:.2} pJ", array.write_slice_energy_j(64) * 1e12);
    println!("  die area           = {:.1} mm^2", array.area_mm2);
    println!("  leakage            = {:.2} mW", array.leakage_w * 1e3);
    Ok(())
}
