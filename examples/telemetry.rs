//! Observability end to end: profile a served query into a per-phase
//! breakdown, read the metrics registry, render the Prometheus
//! exposition, and replay the span flight recorder.
//!
//! Run with:
//! ```text
//! cargo run --release --example telemetry
//! ```

use tcim_repro::graph::generators::{barabasi_albert, rmat, RmatParams};
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::tcim::{Backend, Query, SchedPolicy, ShardPolicy};
use tcim_repro::telemetry::{recent_spans, set_flight_recorder};

fn main() -> tcim_repro::Result<()> {
    // Keep the last spans of every profiled run for post-hoc replay.
    set_flight_recorder(256);

    // A service with per-query profiling on: every response carries a
    // wall-time breakdown over the span hierarchy.
    let config = ServiceConfig { profile_queries: true, ..ServiceConfig::default() };
    let service = TcimService::new(&config)?;
    service.register("social", &barabasi_albert(2_000, 8, 7)?)?;
    service.register("power-law", &rmat(11, 16_000, RmatParams::default(), 23)?)?;

    // --- Per-phase breakdowns ----------------------------------------
    println!("== profiled queries ==");
    let backends = [
        ("serial", Backend::SerialPim),
        ("scheduled", Backend::ScheduledPim(SchedPolicy::with_arrays(4))),
        ("sharded", Backend::Sharded(ShardPolicy::with_shards(4))),
    ];
    for (label, backend) in backends {
        let request =
            QueryRequest::new("power-law", Query::TotalTriangles).with_backend(backend);
        let response = service.query_with(&request)?;
        let phases = response.phases.expect("profiling is enabled");
        println!(
            "  {label:<9} {:>9} triangles  total {:>9.1?}  ({:.1}% accounted)",
            response.triangles,
            phases.total,
            100.0 * phases.phase_sum().as_secs_f64() / phases.total.as_secs_f64(),
        );
        for phase in &phases.phases {
            println!(
                "    {:<10} {:>9.1?}  x{:<3} {:>5.1}%",
                phase.name,
                phase.total,
                phase.count,
                100.0 * phase.total.as_secs_f64() / phases.total.as_secs_f64(),
            );
        }
    }

    // --- Metrics snapshot --------------------------------------------
    // A little more traffic so the counters have something to say.
    for _ in 0..20 {
        service.query("social", &Query::TotalTriangles)?;
    }
    let snap = service.metrics_snapshot();
    println!("\n== counters ==");
    for name in [
        "tcim_service_queries_total",
        "tcim_executions_total",
        "tcim_kernel_invocations_total",
        "tcim_slice_pairs_total",
        "tcim_prepared_cache_hits_total",
        "tcim_prepared_cache_misses_total",
    ] {
        println!("  {name:<34} {}", snap.counter(name).unwrap_or(0));
    }
    if let Some(wall) = snap.histogram("tcim_service_query_wall_nanoseconds") {
        println!("  query wall: count {} p50 ~{}ns p99 ~{}ns", wall.count, wall.p50, wall.p99);
    }

    // --- Prometheus text exposition ----------------------------------
    println!("\n== /metrics (excerpt) ==");
    for line in service
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with("tcim_service_") || l.starts_with("tcim_executions"))
        .take(10)
    {
        println!("  {line}");
    }

    // --- Flight recorder ---------------------------------------------
    println!("\n== flight recorder (most recent spans) ==");
    let spans = recent_spans();
    for span in spans.iter().rev().take(8) {
        println!(
            "  {:indent$}{:<10} {:>9.1?}",
            "",
            span.name,
            span.elapsed,
            indent = span.depth as usize * 2
        );
    }
    set_flight_recorder(0);
    Ok(())
}
