//! Sharded large-graph execution: partition a graph past one array's
//! slice budget, run intra-shard counts in parallel, compose the
//! cross-shard triangles, and let the service auto-select the whole
//! path from a slice budget.
//!
//! Run with:
//! ```text
//! cargo run --release --example sharding
//! ```

use tcim_repro::graph::generators::barabasi_albert;
use tcim_repro::service::{ServiceConfig, TcimService};
use tcim_repro::shard::ShardMode;
use tcim_repro::tcim::{Backend, Query, ShardPolicy, TcimConfig, TcimPipeline};

fn main() -> tcim_repro::Result<()> {
    let g = barabasi_albert(4_096, 8, 7)?;
    let pipeline = TcimPipeline::new(&TcimConfig::default())?;
    let prepared = pipeline.prepare(&g);
    println!(
        "graph: {} vertices, {} edges, {} valid slices prepared",
        g.vertex_count(),
        g.edge_count(),
        prepared.slice_stats().valid_slices,
    );

    // --- Shard-count sweep: same artifact, same answer ---------------
    println!("\n== shard sweep (vs. unsharded serial PIM) ==");
    let serial = pipeline.execute(&prepared, &Backend::SerialPim)?;
    println!("  {serial}");
    for shards in [2usize, 4, 8] {
        let spec = Backend::Sharded(ShardPolicy::with_shards(shards));
        let report = pipeline.execute(&prepared, &spec)?;
        assert_eq!(report.triangles, serial.triangles);
        println!("  {report}");
    }

    // --- The partitioned artifact, inspected -------------------------
    let policy = ShardPolicy::with_shards(4);
    let sharded = pipeline.prepare_sharded(&prepared, &policy.spec)?;
    println!(
        "\n== 4-shard partition == imbalance {:.3}, {} cross arcs, {} boundary slices",
        sharded.plan().imbalance(),
        sharded.plan().cross_arcs(),
        sharded.boundary().boundary_valid_slices(),
    );
    for (s, piece) in sharded.pieces().iter().enumerate() {
        let (lo, hi) = piece.range();
        println!(
            "  shard {s}: vertices {lo:>5}..{hi:<5}  {:>6} intra arcs",
            piece.prepared().oriented().arc_count(),
        );
    }

    // --- Rich queries + provenance, 1D vs 2D composition -------------
    println!("\n== queries with shard provenance ==");
    for mode in [ShardMode::OneD, ShardMode::TwoD] {
        let spec = Backend::Sharded(policy.clone().mode(mode));
        let report = pipeline.query(&prepared, &spec, &Query::TopKVertices { k: 3 })?;
        let prov = report.sharding.as_ref().expect("sharded runs carry provenance");
        println!(
            "  {mode}: top-3 {:?}  ({} intra + {} cross triangles, {} composition units)",
            report
                .value
                .top_k()
                .expect("top-k value shape")
                .iter()
                .map(|e| e.vertex)
                .collect::<Vec<_>>(),
            prov.intra_triangles,
            prov.cross_triangles,
            prov.composition_units,
        );
    }

    // --- Service auto-selection from a slice budget -------------------
    println!("\n== service auto-selection ==");
    let config = ServiceConfig { shard_slice_budget: Some(2_000), ..ServiceConfig::default() };
    let service = TcimService::new(&config)?;
    service.register("big", &g)?;
    let response = service.query("big", &Query::TotalTriangles)?;
    println!("  {response}");
    match &response.sharding {
        Some(prov) => println!(
        "  auto-selected {} shards (budget 2000 slices), imbalance {:.3}, {} boundary arcs",
            prov.shards, prov.imbalance, prov.boundary_arcs,
        ),
        None => println!("  under budget: served unsharded"),
    }
    Ok(())
}
