//! Multi-array scheduling: place a skewed graph's rows onto independent
//! computational arrays, compare placement policies, and batch several
//! graphs through the runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_array
//! ```

use tcim_repro::graph::generators::{barabasi_albert, road_grid};
use tcim_repro::sched::{BatchRunner, PlacementPolicy, SchedPolicy};
use tcim_repro::tcim::{baseline, TcimAccelerator, TcimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accelerator = TcimAccelerator::new(&TcimConfig::default())?;

    // --- Part 1: one skewed graph, three placement policies ----------
    let graph = barabasi_albert(3000, 8, 7)?;
    let expected = baseline::edge_iterator_merge(&graph);
    println!(
        "== Barabási–Albert graph: |V| = {}, |E| = {}, {} triangles ==",
        graph.vertex_count(),
        graph.edge_count(),
        expected
    );

    for placement in PlacementPolicy::ALL {
        let policy = SchedPolicy::with_arrays(8).placement(placement);
        let report = accelerator.count_triangles_scheduled(&graph, &policy)?;
        assert_eq!(report.triangles, expected, "scheduling never changes counts");
        println!(
            "  {placement:>13} x8: critical path {:.3e} s, imbalance {:.3}, \
             array speedup {:.2}x, hit rate {:.1}%",
            report.critical_path_s,
            report.imbalance,
            report.array_speedup(),
            100.0 * report.stats.hit_rate(),
        );
    }

    // --- Part 2: per-array utilization under the default policy ------
    let report =
        accelerator.count_triangles_scheduled(&graph, &SchedPolicy::with_arrays(8))?;
    println!("\n== per-array utilization (load-balanced, 8 arrays) ==");
    for array in &report.per_array {
        println!(
            "  array {}: {:>4} rows, busy {:.3e} s, utilization {:>5.1}%, {}",
            array.array,
            array.rows,
            array.busy_s,
            100.0 * array.utilization,
            array.stats,
        );
    }

    // --- Part 3: a batch of independent jobs --------------------------
    println!("\n== batch: three graphs through BatchRunner ==");
    let matrices = vec![
        accelerator.compress(&barabasi_albert(1500, 6, 1)?),
        accelerator.compress(&road_grid(25, 25, 0.9, 0.3, 2)?),
        accelerator.compress(&barabasi_albert(800, 4, 3)?),
    ];
    let runner = BatchRunner::new(accelerator.engine(), SchedPolicy::with_arrays(4));
    for (i, job) in runner.run_all(&matrices)?.iter().enumerate() {
        println!(
            "  job {i}: {} triangles, critical path {:.3e} s, imbalance {:.3}",
            job.triangles, job.critical_path_s, job.imbalance
        );
    }
    Ok(())
}
