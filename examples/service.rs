//! Multi-graph serving: one `TcimService` holding several registered
//! graphs — static prepared artifacts and a live dynamic graph — and
//! answering a concurrent mixed query workload with provenance.
//!
//! Run with:
//! ```text
//! cargo run --release --example service
//! ```

use tcim_repro::graph::generators::{barabasi_albert, gnm, watts_strogatz};
use tcim_repro::service::{QueryRequest, ServiceConfig, TcimService};
use tcim_repro::stream::UpdateBatch;
use tcim_repro::tcim::{Backend, Query, SchedPolicy};

fn main() -> tcim_repro::Result<()> {
    let service = TcimService::new(&ServiceConfig::default())?;

    // --- Registration: prepare each graph once -----------------------
    println!("== registry ==");
    for info in [
        service.register("social", &barabasi_albert(2_000, 8, 7)?)?,
        service.register("random", &gnm(3_000, 24_000, 42)?)?,
        service.register_live("feed", &watts_strogatz(1_000, 10, 0.1, 3)?)?,
    ] {
        println!(
            "  registered {:<8} {:>5} vertices {:>6} edges  fingerprint {:016x}  ({})",
            info.name,
            info.vertices,
            info.edges,
            info.fingerprint,
            if info.live { "live" } else { "static" },
        );
    }

    // --- Live traffic: the feed graph absorbs edge churn -------------
    let mut batch = UpdateBatch::new();
    for v in 0..40u32 {
        batch.insert(v, 500 + v);
        if v % 4 == 0 {
            batch.delete(v, (v + 1) % 1_000);
        }
    }
    let outcome = service.update("feed", &batch)?;
    println!(
        "\n== live update == {} applied / {} rejected, net delta {} ({} rounds)",
        outcome.applied(),
        outcome.rejected.len(),
        outcome.net_delta(),
        outcome.rounds,
    );

    // --- A concurrent mixed workload ---------------------------------
    // Different graphs, query shapes and backends in one batch; every
    // answer comes from an already-prepared artifact or live state.
    let requests = vec![
        QueryRequest::new("social", Query::TotalTriangles),
        QueryRequest::new("social", Query::TopKVertices { k: 3 })
            .with_backend(Backend::ScheduledPim(SchedPolicy::with_arrays(4))),
        QueryRequest::new("random", Query::GlobalClustering).with_backend(Backend::CpuForward),
        QueryRequest::new("random", Query::PerVertexTriangles).with_backend(Backend::CpuMerge),
        QueryRequest::new("feed", Query::TotalTriangles),
        QueryRequest::new("feed", Query::LocalClustering { vertices: Some(vec![0, 1, 2]) }),
    ];
    println!("\n== serving {} concurrent queries ==", requests.len());
    for outcome in service.serve(&requests) {
        let response = outcome?;
        println!("  {response}");
    }

    // --- Amortization: repeated queries never re-prepare -------------
    let repeats = 32;
    for _ in 0..repeats {
        service.query("social", &Query::TotalTriangles)?;
    }
    println!("\n== after {repeats} repeated total-triangle queries ==");
    for info in service.list() {
        println!("  {:<8} served {:>3} queries", info.name, info.queries_served);
    }
    println!("  prepared cache: {:?}", service.pipeline().cache());
    Ok(())
}
