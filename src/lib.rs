//! Umbrella crate for the TCIM reproduction workspace.
//!
//! This crate exists to host the repository-level runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). All real
//! functionality lives in the member crates, re-exported here so examples
//! can use one import root:
//!
//! * [`tcim_bitmatrix`] — bit-vectors and the sliced compression of §IV-B.
//! * [`tcim_graph`] — graph storage, parsers, generators, dataset catalog.
//! * [`tcim_mtj`] — MTJ device physics (Brinkman + LLG, Table I).
//! * [`tcim_nvsim`] — NVSim-style array latency/energy/area model.
//! * [`tcim_arch`] — the processing-in-MRAM architecture simulator.
//! * [`tcim_sched`] — the multi-array scheduler and parallel execution
//!   runtime (placement policies, critical-path aggregation, batching).
//! * [`tcim_core`] — the public TCIM accelerator API and baselines.
//! * [`tcim_stream`] — the dynamic-graph subsystem: incremental triangle
//!   maintenance under edge streams with per-update PIM delta kernels.

pub use tcim_arch as arch;
pub use tcim_bitmatrix as bitmatrix;
pub use tcim_core as tcim;
pub use tcim_graph as graph;
pub use tcim_mtj as mtj;
pub use tcim_nvsim as nvsim;
pub use tcim_sched as sched;
pub use tcim_stream as stream;
