//! Umbrella crate for the TCIM reproduction workspace.
//!
//! This crate exists to host the repository-level runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). All real
//! functionality lives in the member crates, re-exported here so examples
//! can use one import root:
//!
//! * [`tcim_bitmatrix`] — bit-vectors and the sliced compression of §IV-B.
//! * [`tcim_graph`] — graph storage, parsers, generators, dataset catalog.
//! * [`tcim_mtj`] — MTJ device physics (Brinkman + LLG, Table I).
//! * [`tcim_nvsim`] — NVSim-style array latency/energy/area model.
//! * [`tcim_arch`] — the processing-in-MRAM architecture simulator.
//! * [`tcim_sched`] — the multi-array scheduler and parallel execution
//!   runtime (placement policies, critical-path aggregation, batching).
//! * [`tcim_shard`] — sharded large-graph execution: degree-aware
//!   vertex-range partitioning, cross-shard boundary slices, the
//!   composition pass.
//! * [`tcim_core`] — the public TCIM accelerator API, the typed
//!   [`Query`](tcim_core::Query) layer and baselines.
//! * [`tcim_stream`] — the dynamic-graph subsystem: incremental triangle
//!   maintenance (total + per-vertex) under edge streams with per-update
//!   PIM delta kernels.
//! * [`tcim_service`] — the serving facade: a named multi-graph registry
//!   answering concurrent typed queries with provenance.
//! * [`tcim_gateway`] — the serving front-end: bounded tenant-fair
//!   admission, query micro-batching, snapshot-isolated live reads.
//! * [`tcim_telemetry`] — the observability substrate: tracing spans,
//!   the bounded ring recorder, the metrics registry and the
//!   Prometheus-style exporter.
//!
//! The umbrella also provides [`TcimError`], the workspace-level error
//! every member crate's error converts into, so `?` composes across
//! crate boundaries in examples and integration tests.

use std::error::Error;
use std::fmt;

pub use tcim_arch as arch;
pub use tcim_bitmatrix as bitmatrix;
pub use tcim_core as tcim;
pub use tcim_gateway as gateway;
pub use tcim_graph as graph;
pub use tcim_mtj as mtj;
pub use tcim_nvsim as nvsim;
pub use tcim_sched as sched;
pub use tcim_service as service;
pub use tcim_shard as shard;
pub use tcim_stream as stream;
pub use tcim_telemetry as telemetry;

/// Convenience alias for results in examples and integration tests.
pub type Result<T> = std::result::Result<T, TcimError>;

/// The workspace-level error: every member crate's error type converts
/// into it, so one `?` works across any sequence of cross-crate calls
/// (`fn main() -> tcim_repro::Result<()>` in the examples).
#[derive(Debug)]
#[non_exhaustive]
pub enum TcimError {
    /// From `tcim-graph` (construction, generation, parsing).
    Graph(tcim_graph::GraphError),
    /// From `tcim-bitmatrix` (bit-vector and sliced-matrix operations).
    BitMatrix(tcim_bitmatrix::BitMatrixError),
    /// From `tcim-mtj` (device physics).
    Mtj(tcim_mtj::MtjError),
    /// From `tcim-nvsim` (array characterization).
    Nvsim(tcim_nvsim::NvsimError),
    /// From `tcim-arch` (simulator configuration/characterization).
    Arch(tcim_arch::ArchError),
    /// From `tcim-sched` (scheduling policies and planning).
    Sched(tcim_sched::SchedError),
    /// From `tcim-shard` (partition planning and composition).
    Shard(tcim_shard::ShardError),
    /// From `tcim-core` (pipeline, backends, queries).
    Core(tcim_core::CoreError),
    /// From `tcim-stream` (dynamic-graph updates and folding).
    Stream(tcim_stream::StreamError),
    /// From `tcim-service` (registry and serving).
    Service(tcim_service::ServiceError),
    /// From `tcim-gateway` (admission control and dispatch).
    Gateway(tcim_gateway::GatewayError),
}

impl fmt::Display for TcimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcimError::Graph(e) => write!(f, "graph: {e}"),
            TcimError::BitMatrix(e) => write!(f, "bitmatrix: {e}"),
            TcimError::Mtj(e) => write!(f, "mtj: {e}"),
            TcimError::Nvsim(e) => write!(f, "nvsim: {e}"),
            TcimError::Arch(e) => write!(f, "arch: {e}"),
            TcimError::Sched(e) => write!(f, "sched: {e}"),
            TcimError::Shard(e) => write!(f, "shard: {e}"),
            TcimError::Core(e) => write!(f, "core: {e}"),
            TcimError::Stream(e) => write!(f, "stream: {e}"),
            TcimError::Service(e) => write!(f, "service: {e}"),
            TcimError::Gateway(e) => write!(f, "gateway: {e}"),
        }
    }
}

impl Error for TcimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TcimError::Graph(e) => Some(e),
            TcimError::BitMatrix(e) => Some(e),
            TcimError::Mtj(e) => Some(e),
            TcimError::Nvsim(e) => Some(e),
            TcimError::Arch(e) => Some(e),
            TcimError::Sched(e) => Some(e),
            TcimError::Shard(e) => Some(e),
            TcimError::Core(e) => Some(e),
            TcimError::Stream(e) => Some(e),
            TcimError::Service(e) => Some(e),
            TcimError::Gateway(e) => Some(e),
        }
    }
}

macro_rules! from_member {
    ($variant:ident, $err:ty) => {
        impl From<$err> for TcimError {
            fn from(e: $err) -> Self {
                TcimError::$variant(e)
            }
        }
    };
}

from_member!(Graph, tcim_graph::GraphError);
from_member!(BitMatrix, tcim_bitmatrix::BitMatrixError);
from_member!(Mtj, tcim_mtj::MtjError);
from_member!(Nvsim, tcim_nvsim::NvsimError);
from_member!(Arch, tcim_arch::ArchError);
from_member!(Sched, tcim_sched::SchedError);
from_member!(Shard, tcim_shard::ShardError);
from_member!(Core, tcim_core::CoreError);
from_member!(Stream, tcim_stream::StreamError);
from_member!(Service, tcim_service::ServiceError);
from_member!(Gateway, tcim_gateway::GatewayError);

#[cfg(test)]
mod tests {
    use super::*;

    /// `?` composes across crate boundaries through `TcimError`.
    #[test]
    fn question_mark_composes_across_crates() {
        fn cross_crate() -> Result<u64> {
            let g = tcim_graph::generators::gnm(50, 200, 1)?; // GraphError
            let mut b =
                tcim_bitmatrix::SlicedMatrixBuilder::new(4, tcim_bitmatrix::SliceSize::S64);
            b.add_edge(0, 1)?; // BitMatrixError
            let pipeline = tcim_core::TcimPipeline::new(&tcim_core::TcimConfig::default())?; // CoreError
            let report = pipeline.count(&g, &tcim_core::Backend::CpuMerge)?;
            let mut dynamic =
                tcim_stream::DynamicGraph::new(&g, tcim_stream::StreamConfig::default())?; // StreamError
            dynamic.apply(tcim_stream::Update::Insert(0, 49)).ok();
            let service =
                tcim_service::TcimService::new(&tcim_service::ServiceConfig::default())?; // ServiceError
            service.register("g", &g)?;
            Ok(report.triangles)
        }
        let triangles = cross_crate().unwrap();
        assert_eq!(
            triangles,
            tcim_core::baseline::edge_iterator_merge(
                &tcim_graph::generators::gnm(50, 200, 1).unwrap()
            )
        );
    }

    #[test]
    fn every_member_error_converts_and_sources() {
        let e: TcimError =
            tcim_graph::GraphError::InvalidParameter { reason: "x".into() }.into();
        assert!(e.to_string().starts_with("graph:"));
        assert!(e.source().is_some());
        let e: TcimError =
            tcim_service::ServiceError::UnknownGraph { name: "g".into() }.into();
        assert!(e.to_string().starts_with("service:"));
        let e: TcimError = tcim_sched::SchedError::InvalidPolicy { reason: "y".into() }.into();
        assert!(matches!(e, TcimError::Sched(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TcimError>();
    }
}
